"""Integration tests for the wired network (routers + links + NICs)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SimulationConfig
from repro.network.network import Network
from repro.network.packet import RdmaOp
from repro.network.router import Router, RoutingError
from repro.routing.modes import RoutingMode
from repro.topology.geometry import router_of_node


class TestConstruction:
    def test_counts(self, tiny_network):
        cfg = tiny_network.config.topology
        assert tiny_network.num_nodes == cfg.num_nodes
        assert tiny_network.num_routers == cfg.num_routers
        assert len(list(tiny_network.fabric_links())) == len(tiny_network.topology.all_links())

    def test_every_router_serves_its_nodes(self, tiny_network):
        cfg = tiny_network.config.topology
        for node in range(cfg.num_nodes):
            router = tiny_network.router(router_of_node(node, cfg))
            assert node in router.ejection_links

    def test_injection_links_measure_stalls(self, tiny_network):
        for node in range(tiny_network.num_nodes):
            assert tiny_network.injection_link(node).measure_stalls

    def test_link_lookup(self, tiny_network):
        some_link = next(iter(tiny_network.topology.all_links()))
        assert tiny_network.link(some_link.src, some_link.dst) is not None
        with pytest.raises(KeyError):
            tiny_network.link(0, 10_000)

    def test_node_range_checks(self, tiny_network):
        with pytest.raises(ValueError):
            tiny_network.nic(-1)
        with pytest.raises(ValueError):
            tiny_network.send(0, 10_000, 64)

    def test_self_send_rejected(self, tiny_network):
        with pytest.raises(ValueError):
            tiny_network.send(3, 3, 64)

    def test_buffers_cover_credit_round_trip(self, tiny_network):
        for link in tiny_network.fabric_links():
            assert link.capacity >= 2 * link.latency


class TestSingleMessage:
    def test_message_is_delivered_and_acked(self, tiny_network):
        message = tiny_network.send(0, tiny_network.num_nodes - 1, 4096)
        tiny_network.run_until_idle()
        assert message.delivered
        assert message.acked
        assert message.transmission_time > 0
        assert message.delivered_time <= message.acked_time

    def test_counters_after_put(self, tiny_network):
        size = 4096
        message = tiny_network.send(0, tiny_network.num_nodes - 1, size)
        tiny_network.run_until_idle()
        counters = tiny_network.nic(0).counters.snapshot()
        assert counters.request_packets == message.num_packets
        assert counters.request_flits == message.request_flits
        assert counters.responses_received == message.num_packets
        assert counters.avg_packet_latency > 0

    def test_receiver_counts_messages(self, tiny_network):
        tiny_network.send(0, 5, 1024)
        tiny_network.run_until_idle()
        assert tiny_network.nic(5).messages_received == 1
        assert tiny_network.nic(0).messages_sent == 1

    def test_intra_blade_message(self, tiny_network):
        # Nodes 0 and 1 share a router: the path has a single router.
        message = tiny_network.send(0, 1, 1024)
        tiny_network.run_until_idle()
        assert message.delivered

    def test_get_semantics(self, tiny_network):
        message = tiny_network.send(0, 6, 4096, op=RdmaOp.GET)
        tiny_network.run_until_idle()
        assert message.delivered
        counters = tiny_network.nic(0).counters.snapshot()
        # GET requests are single-flit packets.
        assert counters.request_flits == message.num_packets

    def test_callbacks_fire(self, tiny_network):
        events = []
        tiny_network.send(
            0,
            7,
            2048,
            on_delivered=lambda m: events.append("delivered"),
            on_acked=lambda m: events.append("acked"),
        )
        tiny_network.run_until_idle()
        assert events == ["delivered", "acked"]

    def test_delivered_messages_counter(self, tiny_network):
        tiny_network.send(0, 7, 512)
        tiny_network.send(1, 6, 512)
        tiny_network.run_until_idle()
        assert tiny_network.delivered_messages == 2

    def test_zero_byte_message(self, tiny_network):
        message = tiny_network.send(0, 7, 0)
        tiny_network.run_until_idle()
        assert message.delivered
        assert message.num_packets == 1


class TestRoutingModesOnNetwork:
    @pytest.mark.parametrize("mode", list(RoutingMode))
    def test_all_modes_deliver(self, tiny_network, mode):
        message = tiny_network.send(0, tiny_network.num_nodes - 1, 2048, routing_mode=mode)
        tiny_network.run_until_idle()
        assert message.delivered

    def test_min_hash_routes_only_minimal(self, small_network):
        message = small_network.send(
            0, small_network.num_nodes - 1, 8192, routing_mode=RoutingMode.MIN_HASH
        )
        small_network.run_until_idle()
        assert message.nonminimal_packets == 0
        assert message.minimal_fraction() == 1.0

    def test_nmin_hash_routes_only_nonminimal(self, small_network):
        message = small_network.send(
            0, small_network.num_nodes - 1, 8192, routing_mode=RoutingMode.NMIN_HASH
        )
        small_network.run_until_idle()
        assert message.minimal_packets == 0

    def test_high_bias_more_minimal_than_zero_bias(self):
        """The bias raises the minimal-path fraction for the same traffic."""
        fractions = {}
        for mode in (RoutingMode.ADAPTIVE_0, RoutingMode.ADAPTIVE_3):
            network = Network(SimulationConfig.small())
            message = network.send(
                0, network.num_nodes - 1, 16384, routing_mode=mode
            )
            network.run_until_idle()
            fractions[mode] = message.minimal_fraction()
        assert fractions[RoutingMode.ADAPTIVE_3] >= fractions[RoutingMode.ADAPTIVE_0]
        assert fractions[RoutingMode.ADAPTIVE_3] > 0.7

    def test_selector_statistics_updated(self, small_network):
        small_network.send(0, small_network.num_nodes - 1, 4096)
        small_network.run_until_idle()
        assert small_network.selector.decisions > 0

    def test_outstanding_window_enforced(self, tiny_network):
        # Shrink the window so a medium message exercises the limit.
        config = SimulationConfig.tiny().with_nic(max_outstanding_packets=4)
        network = Network(config)
        nic = network.nic(0)
        message = network.send(0, network.num_nodes - 1, 64 * 32)  # 32 packets
        # The NIC may only ever have 4 packets outstanding.
        max_seen = 0
        while not message.acked and network.sim.step():
            max_seen = max(max_seen, nic.outstanding)
        assert max_seen <= 4
        assert message.delivered


class TestConcurrentTraffic:
    def test_many_messages_all_delivered(self, small_network):
        messages = [
            small_network.send(i, (i + 13) % small_network.num_nodes, 2048)
            for i in range(0, small_network.num_nodes, 3)
        ]
        small_network.run_until_idle()
        assert all(m.delivered and m.acked for m in messages)
        assert small_network.total_deadlock_reliefs() == 0

    def test_incast_produces_stalls(self, tiny_network):
        target = tiny_network.num_nodes - 1
        senders = [n for n in range(tiny_network.num_nodes - 1)][:6]
        for sender in senders:
            tiny_network.send(sender, target, 16384)
        tiny_network.run_until_idle()
        total_stalls = sum(
            tiny_network.nic(s).counters.request_flits_stalled_cycles for s in senders
        )
        assert total_stalls > 0

    def test_congestion_raises_latency(self, small_network):
        """The same transfer takes longer when the network is congested."""
        quiet = Network(SimulationConfig.small())
        probe_quiet = quiet.send(0, quiet.num_nodes - 1, 8192)
        quiet.run_until_idle()

        busy = Network(SimulationConfig.small())
        target_router_nodes = range(busy.num_nodes - 8, busy.num_nodes - 1)
        for sender, node in enumerate(target_router_nodes):
            busy.send(sender + 1, node, 65536)
        probe_busy = busy.send(0, busy.num_nodes - 1, 8192)
        busy.run_until_idle()
        assert probe_busy.transmission_time > probe_quiet.transmission_time

    def test_reset_counters(self, tiny_network):
        tiny_network.send(0, 7, 4096)
        tiny_network.run_until_idle()
        tiny_network.reset_counters()
        assert tiny_network.nic(0).counters.request_flits == 0
        assert tiny_network.total_flits_traversed() == 0
        assert tiny_network.selector.decisions == 0

    def test_router_counters_accumulate(self, tiny_network):
        tiny_network.send(0, tiny_network.num_nodes - 1, 8192)
        tiny_network.run_until_idle()
        assert tiny_network.total_flits_traversed() > 0


class TestRouterErrors:
    def test_router_rejects_packet_without_path(self, tiny_network):
        from repro.network.packet import Message, Packet

        message = Message(0, 1, 64, RoutingMode.ADAPTIVE_0, tiny_network.config.nic)
        packet = Packet(message, 0, 1, flits=5)
        with pytest.raises(RoutingError):
            tiny_network.router(0).packet_arrived(packet, tiny_network.injection_link(0))

    def test_router_rejects_foreign_packet(self, tiny_network):
        from repro.network.packet import Message, Packet

        message = Message(0, 1, 64, RoutingMode.ADAPTIVE_0, tiny_network.config.nic)
        packet = Packet(message, 0, 1, flits=5)
        packet.path = (5, 6)
        with pytest.raises(RoutingError):
            tiny_network.router(0).packet_arrived(packet, tiny_network.injection_link(0))

    def test_duplicate_wiring_rejected(self):
        router = Router(0)
        router.attach_output(1, object())
        with pytest.raises(ValueError):
            router.attach_output(1, object())
        router.attach_ejection(0, object())
        with pytest.raises(ValueError):
            router.attach_ejection(0, object())


class TestResponseRouting:
    """Responses are routed with the same mode as their request stream.

    Pins the behaviour documented on :meth:`Network.assign_path`: a response
    packet goes through the selector with ``message.routing_mode`` — it is
    not silently forced minimal, nor re-decided with a different mode.
    """

    def _run(self, mode: RoutingMode) -> Network:
        network = Network(SimulationConfig.small())
        # Inter-group traffic so minimal and non-minimal paths both exist.
        message = network.send(0, network.num_nodes - 1, 8 * 1024, routing_mode=mode)
        network.run_until_idle()
        assert message.acked
        return network

    def test_min_hash_keeps_responses_minimal(self):
        network = self._run(RoutingMode.MIN_HASH)
        # Requests AND responses go through the selector; none may divert.
        assert network.selector.decisions > 0
        assert network.selector.nonminimal_decisions == 0

    def test_nmin_hash_diverts_responses_too(self):
        network = self._run(RoutingMode.NMIN_HASH)
        # Every decision (request and response alike) must be non-minimal.
        assert network.selector.decisions > 0
        assert network.selector.minimal_decisions == 0

    def test_response_decisions_counted(self):
        """The selector sees two decisions per packet: request + response."""
        network = Network(SimulationConfig.small())
        message = network.send(0, network.num_nodes - 1, 4 * 1024)
        network.run_until_idle()
        assert message.acked
        assert network.selector.decisions == 2 * message.num_packets


@given(
    size=st.integers(min_value=1, max_value=32 * 1024),
    src=st.integers(min_value=0, max_value=15),
    dst=st.integers(min_value=0, max_value=15),
    mode=st.sampled_from(list(RoutingMode)),
)
@settings(max_examples=30, deadline=None)
def test_property_any_message_is_delivered_exactly_once(size, src, dst, mode):
    """Conservation: every request packet is delivered and acknowledged once."""
    if src == dst:
        return
    network = Network(SimulationConfig.tiny())
    message = network.send(src, dst, size, routing_mode=mode)
    network.run_until_idle()
    assert message.packets_delivered == message.num_packets
    assert message.packets_acked == message.num_packets
    counters = network.nic(src).counters.snapshot()
    assert counters.request_packets == message.num_packets
    assert counters.responses_received == message.num_packets
