"""Tests for message packetization and packet bookkeeping."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import NicConfig
from repro.network.packet import Message, Packet, RdmaOp, packetize
from repro.routing.modes import RoutingMode


NIC = NicConfig()


class TestPacketize:
    def test_one_packet_per_64_bytes(self):
        packets, _, _ = packetize(640, RdmaOp.PUT, NIC)
        assert packets == 10

    def test_put_five_flits_per_full_packet(self):
        packets, flits, _ = packetize(64, RdmaOp.PUT, NIC)
        assert packets == 1
        assert flits == 5  # 1 header + 4 payload

    def test_get_one_flit_per_packet(self):
        packets, flits, response = packetize(640, RdmaOp.GET, NIC)
        assert packets == 10
        assert flits == 10
        assert response > flits  # data comes back in responses

    def test_zero_byte_message_is_one_packet(self):
        packets, flits, response = packetize(0, RdmaOp.PUT, NIC)
        assert packets == 1
        assert flits == NIC.header_flits
        assert response == NIC.response_flits

    def test_partial_tail_packet(self):
        # 100 bytes = one full 64-byte packet + one 36-byte tail packet.
        packets, flits, _ = packetize(100, RdmaOp.PUT, NIC)
        assert packets == 2
        # Full packet: 5 flits; tail: 1 header + ceil(36/16)=3 payload flits.
        assert flits == 5 + 4

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            packetize(-1, RdmaOp.PUT, NIC)

    def test_put_response_is_one_flit_per_packet(self):
        packets, _, response = packetize(1024, RdmaOp.PUT, NIC)
        assert response == packets * NIC.response_flits

    @given(size=st.integers(min_value=1, max_value=1_000_000))
    @settings(max_examples=200, deadline=None)
    def test_property_packet_count_matches_size(self, size):
        packets, flits, _ = packetize(size, RdmaOp.PUT, NIC)
        assert packets == -(-size // NIC.packet_payload_bytes)
        # Request flits are bounded by 5 per packet and at least 2 per packet
        # (header + one payload flit).
        assert packets * 2 <= flits <= packets * 5

    @given(size=st.integers(min_value=1, max_value=1_000_000))
    @settings(max_examples=100, deadline=None)
    def test_property_flits_cover_payload(self, size):
        _, flits, _ = packetize(size, RdmaOp.PUT, NIC)
        payload_flits = flits - packetize(size, RdmaOp.PUT, NIC)[0] * NIC.header_flits
        assert payload_flits * NIC.flit_payload_bytes >= size


class TestMessage:
    def _message(self, size=4096, op=RdmaOp.PUT):
        return Message(
            src_node=0,
            dst_node=1,
            size_bytes=size,
            routing_mode=RoutingMode.ADAPTIVE_0,
            nic_config=NIC,
            op=op,
        )

    def test_initial_state(self):
        message = self._message()
        assert not message.delivered
        assert not message.acked
        assert message.transmission_time is None
        assert message.num_packets == 64

    def test_delivered_when_all_packets_arrive(self):
        message = self._message(128)
        assert message.num_packets == 2
        message.packets_delivered = 2
        assert message.delivered

    def test_minimal_fraction_default_is_one(self):
        assert self._message().minimal_fraction() == 1.0

    def test_minimal_fraction_counts(self):
        message = self._message()
        message.minimal_packets = 3
        message.nonminimal_packets = 1
        assert message.minimal_fraction() == pytest.approx(0.75)

    def test_transmission_time(self):
        message = self._message()
        message.submit_time = 100
        message.delivered_time = 350
        assert message.transmission_time == 250

    def test_unique_ids(self):
        assert self._message().id != self._message().id


class TestPacket:
    def test_defaults(self):
        message = Message(0, 1, 64, RoutingMode.ADAPTIVE_0, NIC)
        packet = Packet(message, 0, 1, flits=5)
        assert packet.path is None
        assert not packet.is_response
        assert packet.hop_index == 0

    def test_unique_ids(self):
        message = Message(0, 1, 64, RoutingMode.ADAPTIVE_0, NIC)
        a = Packet(message, 0, 1, flits=5)
        b = Packet(message, 0, 1, flits=5)
        assert a.id != b.id
