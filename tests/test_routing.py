"""Tests for routing modes, bias schedule and the UGAL selector."""

from __future__ import annotations

import random

import pytest

from repro.config import RoutingConfig, SimulationConfig
from repro.network.network import Network
from repro.routing.bias import bias_for_mode
from repro.routing.modes import ADAPTIVE_MODES, DETERMINISTIC_MODES, RoutingMode
from repro.routing.ugal import UgalSelector
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.paths import hop_count_minimal


class TestRoutingMode:
    def test_partition(self):
        assert ADAPTIVE_MODES | DETERMINISTIC_MODES == set(RoutingMode)
        assert not ADAPTIVE_MODES & DETERMINISTIC_MODES

    def test_adaptive_flags(self):
        assert RoutingMode.ADAPTIVE_0.is_adaptive
        assert not RoutingMode.MIN_HASH.is_adaptive

    def test_minimal_flags(self):
        assert RoutingMode.MIN_HASH.always_minimal
        assert RoutingMode.IN_ORDER.always_minimal
        assert RoutingMode.NMIN_HASH.always_nonminimal
        assert not RoutingMode.ADAPTIVE_0.always_minimal

    def test_paper_names(self):
        assert RoutingMode.ADAPTIVE_0.paper_name() == "Adaptive"
        assert RoutingMode.ADAPTIVE_3.paper_name() == "Adaptive with High Bias"
        assert RoutingMode.ADAPTIVE_1.paper_name() == "Increasingly Minimal Bias"

    def test_defaults(self):
        assert RoutingMode.default() is RoutingMode.ADAPTIVE_0
        assert RoutingMode.alltoall_default() is RoutingMode.ADAPTIVE_1
        assert RoutingMode.high_bias() is RoutingMode.ADAPTIVE_3


class TestBias:
    CONFIG = RoutingConfig()

    def test_adaptive0_no_bias(self):
        assert bias_for_mode(RoutingMode.ADAPTIVE_0, self.CONFIG, 3) == 0.0

    def test_bias_ordering(self):
        """ADAPTIVE_0 < ADAPTIVE_2 < ADAPTIVE_3 and IMB in between (Section 2.2)."""
        b0 = bias_for_mode(RoutingMode.ADAPTIVE_0, self.CONFIG, 3)
        b1 = bias_for_mode(RoutingMode.ADAPTIVE_1, self.CONFIG, 3)
        b2 = bias_for_mode(RoutingMode.ADAPTIVE_2, self.CONFIG, 3)
        b3 = bias_for_mode(RoutingMode.ADAPTIVE_3, self.CONFIG, 3)
        assert b0 < b2 < b3
        assert b0 < b1 <= b3

    def test_imb_bias_grows_with_distance(self):
        near = bias_for_mode(RoutingMode.ADAPTIVE_1, self.CONFIG, 1)
        far = bias_for_mode(RoutingMode.ADAPTIVE_1, self.CONFIG, 5)
        assert far >= near

    def test_imb_capped_at_high_bias(self):
        bias = bias_for_mode(RoutingMode.ADAPTIVE_1, self.CONFIG, 50)
        assert bias <= self.CONFIG.high_bias

    def test_deterministic_modes_rejected(self):
        with pytest.raises(ValueError):
            bias_for_mode(RoutingMode.MIN_HASH, self.CONFIG, 3)


class TestUgalSelector:
    @pytest.fixture
    def topology(self, small_config):
        return DragonflyTopology(small_config.topology)

    @pytest.fixture
    def selector(self, topology, small_config):
        return UgalSelector(topology, small_config.routing, random.Random(3))

    def test_same_router_trivial_path(self, selector):
        decision = selector.select(4, 4, RoutingMode.ADAPTIVE_0)
        assert decision.path == (4,)
        assert decision.minimal

    def test_min_hash_minimal(self, selector, topology):
        src, dst = 0, topology.num_routers - 1
        allowed_groups = {topology.group_of(src), topology.group_of(dst)}
        for _ in range(20):
            decision = selector.select(src, dst, RoutingMode.MIN_HASH)
            assert decision.minimal
            # A minimal (direct) Dragonfly route never detours through an
            # intermediate group and is at most 5 hops long.
            assert len(decision.path) - 1 <= 5
            assert {topology.group_of(r) for r in decision.path} <= allowed_groups

    def test_in_order_is_deterministic(self, selector, topology):
        paths = {
            selector.select(0, topology.num_routers - 1, RoutingMode.IN_ORDER).path
            for _ in range(10)
        }
        assert len(paths) == 1

    def test_nmin_hash_nonminimal(self, selector, topology):
        decision = selector.select(0, topology.num_routers - 1, RoutingMode.NMIN_HASH)
        assert not decision.minimal

    def test_adaptive_idle_prefers_minimal(self, selector, topology):
        """With zero congestion, even zero-bias UGAL routes minimally."""
        for _ in range(50):
            decision = selector.select(0, topology.num_routers - 1, RoutingMode.ADAPTIVE_0)
            assert decision.minimal

    def test_statistics_tracked(self, selector, topology):
        for _ in range(10):
            selector.select(0, topology.num_routers - 1, RoutingMode.ADAPTIVE_0)
        assert selector.decisions == 10
        assert selector.minimal_decisions + selector.nonminimal_decisions == 10
        selector.reset_statistics()
        assert selector.decisions == 0

    def test_minimal_fraction_empty_is_one(self, selector):
        assert selector.minimal_fraction == 1.0

    def test_unsupported_mode_raises(self, selector):
        with pytest.raises(ValueError):
            selector._select_adaptive(0, 1, RoutingMode.MIN_HASH)


class TestCongestionAwareSelection:
    """UGAL decisions react to congestion and to the bias value."""

    def _network_with_congested_first_hop(self, bias_mode, credit_delay=0):
        config = SimulationConfig.small().with_routing(credit_info_delay=credit_delay)
        network = Network(config)
        return network

    def test_congestion_diverts_zero_bias_traffic(self):
        """With a congested minimal path, ADAPTIVE_0 uses non-minimal paths."""
        network = Network(SimulationConfig.small())
        # Congest the direct green link 0->1 by keeping its queue full.
        victim_link = network.link(0, 1)
        filler = network.send(0, network.config.topology.nodes_per_router, 64 * 1024)
        # Give the filler a head start so queues build up.
        network.run(until=2_000)
        # Now send a probe from node 0 to a node on router 1 with both modes.
        probe = network.send(
            1, network.config.topology.nodes_per_router + 1, 16 * 1024,
            routing_mode=RoutingMode.ADAPTIVE_0,
        )
        network.run_until_idle()
        del victim_link, filler
        # Under sustained congestion at least some packets must have diverted.
        assert probe.nonminimal_packets > 0

    def test_high_bias_diverts_less_than_zero_bias(self):
        """A higher bias keeps more traffic on the minimal path.

        The load is kept *moderate* (4 KiB per sender): once the shared
        green link saturates, congestion scores dwarf any bias value and the
        minimal fraction becomes insensitive to the mode — the bias effect
        is only observable while minimal and diverted scores are of the same
        order.
        """
        fractions = {}
        for mode in (RoutingMode.ADAPTIVE_0, RoutingMode.ADAPTIVE_3):
            network = Network(SimulationConfig.small())
            nodes_per_router = network.config.topology.nodes_per_router
            # Several senders on router 0 all target router 1: the shared
            # green link congests and UGAL must decide whether to divert.
            messages = []
            for slot in range(nodes_per_router):
                messages.append(
                    network.send(
                        slot, nodes_per_router + slot, 4 * 1024, routing_mode=mode
                    )
                )
            network.run_until_idle()
            total_min = sum(m.minimal_packets for m in messages)
            total = sum(m.minimal_packets + m.nonminimal_packets for m in messages)
            fractions[mode] = total_min / total
        assert fractions[RoutingMode.ADAPTIVE_3] > fractions[RoutingMode.ADAPTIVE_0]

    def test_phantom_congestion_increases_nonminimal_traffic(self):
        """Stale credit information makes zero-bias UGAL divert more traffic."""
        results = {}
        for delay in (0, 5_000):
            config = SimulationConfig.small().with_routing(credit_info_delay=delay)
            network = Network(config)
            nodes_per_router = network.config.topology.nodes_per_router
            messages = []
            # Phase 1: congest the minimal path, then let it drain.
            network.send(0, nodes_per_router, 32 * 1024)
            network.run(until=20_000)
            # Phase 2: once congestion is gone, send probes; with stale
            # information the router still believes the path is congested.
            for slot in range(1, nodes_per_router):
                messages.append(
                    network.send(
                        slot,
                        nodes_per_router + slot,
                        16 * 1024,
                        routing_mode=RoutingMode.ADAPTIVE_0,
                    )
                )
            network.run_until_idle()
            nonmin = sum(m.nonminimal_packets for m in messages)
            total = sum(m.minimal_packets + m.nonminimal_packets for m in messages)
            results[delay] = nonmin / total
        assert results[5_000] >= results[0]
