"""Tests for routing policies and the uGNI-shim runtime."""

from __future__ import annotations

import pytest

from repro.config import NicConfig, SimulationConfig
from repro.core.policy import (
    ApplicationAwarePolicy,
    StaticRoutingPolicy,
    default_policy,
    high_bias_policy,
)
from repro.core.runtime import AppAwareRuntime
from repro.core.selector import SelectorParams
from repro.network.counters import CounterSnapshot
from repro.network.network import Network
from repro.routing.modes import RoutingMode

NIC = NicConfig()


def snapshot(latency=1000.0, stalls=10, flits=100, packets=20, responses=20):
    return CounterSnapshot(
        request_flits=flits,
        request_flits_stalled_cycles=stalls,
        request_packets=packets,
        request_packets_cum_latency=latency * responses,
        responses_received=responses,
    )


class TestStaticPolicies:
    def test_default_policy_modes(self):
        policy = default_policy()
        assert policy.mode_for(1024, 3) is RoutingMode.ADAPTIVE_0
        assert policy.mode_for(1024, 3, collective="alltoall") is RoutingMode.ADAPTIVE_1
        assert policy.mode_for(1024, 3, collective="allreduce") is RoutingMode.ADAPTIVE_0
        assert policy.describe() == "Default"

    def test_high_bias_policy(self):
        policy = high_bias_policy()
        assert policy.mode_for(1024, 3) is RoutingMode.ADAPTIVE_3
        assert policy.mode_for(1024, 3, collective="alltoall") is RoutingMode.ADAPTIVE_3
        assert policy.describe() == "HighBias"

    def test_default_traffic_fraction(self):
        policy = default_policy()
        policy.mode_for(1000, 1)
        assert policy.default_traffic_fraction() == 1.0
        assert high_bias_policy().default_traffic_fraction() == 0.0

    def test_high_bias_fraction_after_traffic(self):
        policy = high_bias_policy()
        policy.mode_for(1000, 1)
        assert policy.default_traffic_fraction() == 0.0

    def test_observe_is_noop(self):
        policy = default_policy()
        policy.observe(snapshot(), RoutingMode.ADAPTIVE_0)  # must not raise

    def test_custom_label(self):
        policy = StaticRoutingPolicy(RoutingMode.MIN_HASH)
        assert "MIN_HASH" in policy.describe()


class TestApplicationAwarePolicy:
    def test_mode_for_uses_selector(self):
        policy = ApplicationAwarePolicy(NIC)
        mode = policy.mode_for(64, 1)
        assert mode in (RoutingMode.ADAPTIVE_0, RoutingMode.ADAPTIVE_3)

    def test_observe_feeds_selector(self):
        policy = ApplicationAwarePolicy(NIC, SelectorParams(threshold_bytes=0))
        policy.observe(snapshot(latency=10_000.0, stalls=0), RoutingMode.ADAPTIVE_0)
        # Tiny message + very high adaptive latency → High Bias.
        assert policy.mode_for(64, 1) is RoutingMode.ADAPTIVE_3

    def test_observe_ignores_empty_snapshot(self):
        policy = ApplicationAwarePolicy(NIC)
        empty = CounterSnapshot(0, 0, 0, 0.0, 0)
        policy.observe(empty, RoutingMode.ADAPTIVE_0)
        assert policy.selector._adaptive_obs.latency is None

    def test_describe(self):
        assert ApplicationAwarePolicy(NIC).describe() == "AppAware"

    def test_alltoall_goes_through_selector(self):
        policy = ApplicationAwarePolicy(NIC, SelectorParams(threshold_bytes=0))
        policy.observe(snapshot(latency=100.0, stalls=10_000), RoutingMode.ADAPTIVE_0)
        mode = policy.mode_for(1 << 20, 1, collective="alltoall")
        assert mode in (RoutingMode.ADAPTIVE_1, RoutingMode.ADAPTIVE_3)


class TestAppAwareRuntime:
    def test_send_and_feedback_loop(self):
        network = Network(SimulationConfig.tiny())
        runtime = AppAwareRuntime(network, node_id=0)
        acked = []
        runtime.send(network.num_nodes - 1, 8192, on_acked=lambda m: acked.append(m))
        network.run_until_idle()
        assert acked and acked[0].acked
        # The feedback loop must have populated the selector's observations.
        selector = runtime.policy.selector
        assert (
            selector._adaptive_obs.latency is not None
            or selector._bias_obs.latency is not None
        )
        assert runtime.messages_sent == 1
        assert runtime.bytes_sent == 8192

    def test_static_policy_runtime(self):
        network = Network(SimulationConfig.tiny())
        runtime = AppAwareRuntime(network, node_id=0, policy=high_bias_policy())
        message = runtime.send(network.num_nodes - 1, 4096)
        network.run_until_idle()
        assert message.delivered
        assert message.routing_mode is RoutingMode.ADAPTIVE_3
        assert runtime.describe() == "HighBias"

    def test_delivered_callback(self):
        network = Network(SimulationConfig.tiny())
        runtime = AppAwareRuntime(network, node_id=0)
        delivered = []
        runtime.send(5, 1024, on_delivered=lambda m: delivered.append(m.id))
        network.run_until_idle()
        assert len(delivered) == 1

    def test_default_traffic_fraction_reported(self):
        network = Network(SimulationConfig.tiny())
        runtime = AppAwareRuntime(network, node_id=0)
        for _ in range(4):
            runtime.send(network.num_nodes - 1, 16384)
            network.run_until_idle()
        assert 0.0 <= runtime.default_traffic_fraction <= 1.0

    def test_successive_sends_adapt(self):
        """After several messages the selector has data for both modes or has settled."""
        network = Network(SimulationConfig.tiny())
        runtime = AppAwareRuntime(network, node_id=0)
        for _ in range(6):
            runtime.send(network.num_nodes - 1, 32768)
            network.run_until_idle()
        selector = runtime.policy.selector
        assert selector.decisions == 6
