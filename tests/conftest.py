"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig, TopologyConfig
from repro.network.network import Network
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.topology.dragonfly import DragonflyTopology


@pytest.fixture
def tiny_config() -> SimulationConfig:
    """Smallest configuration exercising all three link tiers (2 groups)."""
    return SimulationConfig.tiny()


@pytest.fixture
def small_config() -> SimulationConfig:
    """The default 4-group configuration."""
    return SimulationConfig.small()


@pytest.fixture
def tiny_topology(tiny_config) -> DragonflyTopology:
    """Topology object for the tiny configuration."""
    return DragonflyTopology(tiny_config.topology)


@pytest.fixture
def small_topology(small_config) -> DragonflyTopology:
    """Topology object for the small configuration."""
    return DragonflyTopology(small_config.topology)


@pytest.fixture
def tiny_network(tiny_config) -> Network:
    """A fully wired tiny network."""
    return Network(tiny_config)


@pytest.fixture
def small_network(small_config) -> Network:
    """A fully wired small network."""
    return Network(small_config)


@pytest.fixture
def simulator() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def streams() -> RandomStreams:
    """A deterministic random-stream registry."""
    return RandomStreams(12345)
