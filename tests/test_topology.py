"""Tests for the Dragonfly topology, geometry and path sampling."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import TopologyConfig
from repro.topology.dragonfly import DragonflyTopology, LinkId, LinkKind
from repro.topology.geometry import (
    NodeCoord,
    RouterCoord,
    group_of_node,
    nodes_of_router,
    router_of_node,
)
from repro.topology.paths import PathSampler, hop_count_minimal


class TestGeometry:
    def test_router_flat_roundtrip(self, small_config):
        topo = small_config.topology
        for rid in range(topo.num_routers):
            coord = RouterCoord.from_flat(rid, topo)
            assert coord.flat(topo) == rid

    def test_node_flat_roundtrip(self, small_config):
        topo = small_config.topology
        for nid in range(topo.num_nodes):
            coord = NodeCoord.from_flat(nid, topo)
            assert coord.flat(topo) == nid

    def test_router_out_of_range(self, small_config):
        with pytest.raises(ValueError):
            RouterCoord.from_flat(10_000, small_config.topology)

    def test_node_out_of_range(self, small_config):
        with pytest.raises(ValueError):
            NodeCoord.from_flat(-1, small_config.topology)

    def test_router_of_node(self, small_config):
        topo = small_config.topology
        assert router_of_node(0, topo) == 0
        assert router_of_node(topo.nodes_per_router, topo) == 1

    def test_nodes_of_router(self, small_config):
        topo = small_config.topology
        nodes = list(nodes_of_router(2, topo))
        assert len(nodes) == topo.nodes_per_router
        assert all(router_of_node(n, topo) == 2 for n in nodes)

    def test_group_of_node(self, small_config):
        topo = small_config.topology
        last_node = topo.num_nodes - 1
        assert group_of_node(last_node, topo) == topo.num_groups - 1

    def test_labels(self, small_config):
        topo = small_config.topology
        assert RouterCoord.from_flat(0, topo).label() == "g0-c0-b0"
        assert NodeCoord.from_flat(0, topo).label() == "g0-c0-b0-n0"

    def test_same_chassis_and_blade_slot(self):
        a = RouterCoord(0, 1, 2)
        assert a.same_chassis(RouterCoord(0, 1, 3))
        assert not a.same_chassis(RouterCoord(0, 2, 2))
        assert a.same_blade_slot(RouterCoord(0, 0, 2))
        assert not a.same_blade_slot(RouterCoord(1, 1, 2))


class TestDragonflyStructure:
    def test_validate_passes(self, small_topology):
        small_topology.validate()

    def test_green_links_within_chassis(self, small_topology):
        topo = small_topology
        cfg = topo.config
        for rid in range(cfg.num_routers):
            greens = [
                n for n, kind in topo.neighbors(rid).items() if kind == LinkKind.GREEN
            ]
            assert len(greens) == cfg.blades_per_chassis - 1
            for neighbor in greens:
                assert topo.chassis_of_router[neighbor] == topo.chassis_of_router[rid]
                assert topo.group_of_router[neighbor] == topo.group_of_router[rid]

    def test_black_links_within_blade_slot(self, small_topology):
        topo = small_topology
        cfg = topo.config
        for rid in range(cfg.num_routers):
            blacks = [
                n for n, kind in topo.neighbors(rid).items() if kind == LinkKind.BLACK
            ]
            assert len(blacks) == cfg.chassis_per_group - 1
            for neighbor in blacks:
                assert topo.blade_of_router[neighbor] == topo.blade_of_router[rid]
                assert topo.group_of_router[neighbor] == topo.group_of_router[rid]

    def test_links_are_bidirectional(self, small_topology):
        topo = small_topology
        for rid in range(topo.num_routers):
            for neighbor, kind in topo.neighbors(rid).items():
                assert topo.link_kind(neighbor, rid) == kind

    def test_all_group_pairs_connected(self, small_topology):
        cfg = small_topology.config
        for a in range(cfg.num_groups):
            for b in range(cfg.num_groups):
                if a != b:
                    assert small_topology.gateways(a, b)

    def test_gateways_symmetric(self, small_topology):
        forward = small_topology.gateways(0, 1)
        backward = small_topology.gateways(1, 0)
        assert {(b, a) for a, b in forward} == set(backward)

    def test_gateways_same_group_rejected(self, small_topology):
        with pytest.raises(ValueError):
            small_topology.gateways(1, 1)

    def test_global_endpoint_budget_respected(self, small_topology):
        cfg = small_topology.config
        for rid in range(cfg.num_routers):
            blues = [
                n for n, kind in small_topology.neighbors(rid).items() if kind == LinkKind.BLUE
            ]
            assert len(blues) <= cfg.global_links_per_router

    def test_link_kind_missing_raises(self, small_topology):
        cfg = small_topology.config
        # Routers in different groups and different blade slots without an
        # optical link: find one pair that is not adjacent.
        for a in range(cfg.num_routers):
            for b in range(cfg.num_routers):
                if a != b and not small_topology.has_link(a, b):
                    with pytest.raises(KeyError):
                        small_topology.link_kind(a, b)
                    return
        pytest.skip("topology is fully connected")

    def test_all_links_count(self, small_topology):
        cfg = small_topology.config
        links = small_topology.all_links()
        greens = cfg.num_routers * (cfg.blades_per_chassis - 1)
        blacks = cfg.num_routers * (cfg.chassis_per_group - 1)
        blues = sum(
            1 for link in links if link.kind == LinkKind.BLUE
        )
        assert len(links) == greens + blacks + blues
        assert blues >= cfg.num_groups * (cfg.num_groups - 1)

    def test_link_latency_by_kind(self, small_topology):
        cfg = small_topology.config
        assert small_topology.link_latency(LinkKind.BLUE) == cfg.global_link_latency
        assert small_topology.link_latency(LinkKind.GREEN) == cfg.local_link_latency
        assert small_topology.link_latency(LinkKind.HOST) == cfg.host_link_latency

    def test_link_width_by_kind(self, small_topology):
        cfg = small_topology.config
        assert small_topology.link_width(LinkKind.BLACK) == cfg.intra_group_tiles
        assert small_topology.link_width(LinkKind.BLUE) == 1

    def test_degree_summary(self, small_topology):
        summary = small_topology.degree_summary()
        assert summary["routers"] == small_topology.num_routers
        assert summary["green_per_router"] == small_topology.config.blades_per_chassis - 1

    def test_coords_arrays_match_geometry(self, small_topology):
        cfg = small_topology.config
        for rid in range(cfg.num_routers):
            coord = RouterCoord.from_flat(rid, cfg)
            assert small_topology.coords_of(rid) == (coord.group, coord.chassis, coord.blade)

    def test_link_id_reverse_and_label(self, small_config):
        link = LinkId(0, 1, LinkKind.GREEN)
        assert link.reversed() == LinkId(1, 0, LinkKind.GREEN)
        assert "green" in link.label(small_config.topology)

    def test_bigger_aries_like_builds(self):
        topo = DragonflyTopology(TopologyConfig.aries_like(num_groups=4))
        topo.validate()


class TestHopCounts:
    def test_same_router_zero(self, small_topology):
        assert hop_count_minimal(small_topology, 3, 3) == 0

    def test_same_chassis_one(self, small_topology):
        assert hop_count_minimal(small_topology, 0, 1) == 1

    def test_same_blade_slot_one(self, small_topology):
        cfg = small_topology.config
        other_chassis = cfg.blades_per_chassis  # router (0, 1, 0)
        assert hop_count_minimal(small_topology, 0, other_chassis) == 1

    def test_same_group_two(self, small_topology):
        cfg = small_topology.config
        diagonal = cfg.blades_per_chassis + 1  # router (0, 1, 1)
        assert hop_count_minimal(small_topology, 0, diagonal) == 2

    def test_inter_group_bounds(self, small_topology):
        cfg = small_topology.config
        for dst in range(cfg.routers_per_group, cfg.num_routers):
            hops = hop_count_minimal(small_topology, 0, dst)
            assert 1 <= hops <= 5

    def test_symmetric(self, small_topology):
        rng = random.Random(0)
        for _ in range(50):
            a = rng.randrange(small_topology.num_routers)
            b = rng.randrange(small_topology.num_routers)
            assert hop_count_minimal(small_topology, a, b) == hop_count_minimal(
                small_topology, b, a
            )


class TestPathSampler:
    @pytest.fixture
    def sampler(self, small_topology):
        return PathSampler(small_topology, random.Random(7))

    def test_minimal_paths_are_physical(self, sampler, small_topology):
        rng = random.Random(1)
        for _ in range(200):
            a = rng.randrange(small_topology.num_routers)
            b = rng.randrange(small_topology.num_routers)
            path = sampler.minimal(a, b)
            assert path[0] == a and path[-1] == b
            sampler.validate_path(path)

    def test_minimal_path_bounds_and_no_group_detour(self, sampler, small_topology):
        """A 'minimal' Dragonfly route takes the direct group-to-group link.

        Its length is bounded by 5 hops and never below the true minimum;
        it never visits a third group (that would be a Valiant detour).
        """
        rng = random.Random(2)
        for _ in range(200):
            a = rng.randrange(small_topology.num_routers)
            b = rng.randrange(small_topology.num_routers)
            path = sampler.minimal(a, b)
            hops = len(path) - 1
            assert hop_count_minimal(small_topology, a, b) <= hops <= 5
            groups = {small_topology.group_of(r) for r in path}
            assert groups <= {small_topology.group_of(a), small_topology.group_of(b)}
            if small_topology.group_of(a) == small_topology.group_of(b):
                assert hops <= 2

    def test_nonminimal_paths_are_physical(self, sampler, small_topology):
        rng = random.Random(3)
        for _ in range(200):
            a = rng.randrange(small_topology.num_routers)
            b = rng.randrange(small_topology.num_routers)
            path = sampler.nonminimal(a, b)
            assert path[0] == a and path[-1] == b
            sampler.validate_path(path)

    def test_nonminimal_at_least_as_long_as_minimal(self, sampler, small_topology):
        rng = random.Random(4)
        for _ in range(200):
            a = rng.randrange(small_topology.num_routers)
            b = rng.randrange(small_topology.num_routers)
            minimal = hop_count_minimal(small_topology, a, b)
            nonminimal = len(sampler.nonminimal(a, b)) - 1
            assert nonminimal >= minimal

    def test_inter_group_nonminimal_visits_intermediate_group(self, sampler, small_topology):
        cfg = small_topology.config
        src, dst = 0, cfg.num_routers - 1
        src_group = small_topology.group_of(src)
        dst_group = small_topology.group_of(dst)
        saw_intermediate = False
        for _ in range(50):
            path = sampler.nonminimal(src, dst)
            groups = {small_topology.group_of(r) for r in path}
            if groups - {src_group, dst_group}:
                saw_intermediate = True
                break
        assert saw_intermediate

    def test_nonminimal_with_explicit_intermediate(self, sampler, small_topology):
        path = sampler.nonminimal(0, small_topology.num_routers - 1, intermediate=2)
        groups = {small_topology.group_of(r) for r in path}
        assert 2 in groups

    def test_all_minimal_enumeration(self, sampler, small_topology):
        paths = sampler.all_minimal(0, small_topology.num_routers - 1)
        assert paths
        best = hop_count_minimal(small_topology, 0, small_topology.num_routers - 1)
        for path in paths:
            assert len(path) - 1 == best
            sampler.validate_path(path)

    def test_all_minimal_same_router(self, sampler):
        assert sampler.all_minimal(5, 5) == [(5,)]

    def test_intra_group_two_hop_has_two_minimal_paths(self, sampler, small_topology):
        cfg = small_topology.config
        diagonal = cfg.blades_per_chassis + 1
        paths = sampler.all_minimal(0, diagonal)
        assert len(paths) == 2

    def test_minimal_hops_cache_consistency(self, sampler, small_topology):
        rng = random.Random(5)
        for _ in range(100):
            a = rng.randrange(small_topology.num_routers)
            b = rng.randrange(small_topology.num_routers)
            assert sampler.minimal_hops(a, b) == hop_count_minimal(small_topology, a, b)

    def test_two_group_detour(self, tiny_topology):
        sampler = PathSampler(tiny_topology, random.Random(11))
        src, dst = 0, tiny_topology.num_routers - 1
        for _ in range(20):
            path = sampler.nonminimal(src, dst)
            sampler.validate_path(path)
            assert path[0] == src and path[-1] == dst

    def test_validate_path_rejects_bogus_hop(self, sampler, small_topology):
        # Two routers in different groups without a direct optical link.
        for a in range(small_topology.num_routers):
            for b in range(small_topology.num_routers):
                if (
                    a != b
                    and small_topology.group_of(a) != small_topology.group_of(b)
                    and not small_topology.has_link(a, b)
                ):
                    with pytest.raises(AssertionError):
                        sampler.validate_path((a, b))
                    return
        pytest.skip("no non-adjacent inter-group pair found")


@given(
    num_groups=st.integers(min_value=1, max_value=5),
    chassis=st.integers(min_value=1, max_value=3),
    blades=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=25, deadline=None)
def test_property_topology_builds_and_routes(num_groups, chassis, blades):
    """Any geometry with enough optical endpoints builds a routable network."""
    routers_per_group = chassis * blades
    if num_groups > 1:
        needed = -(-(num_groups - 1) // routers_per_group)
    else:
        needed = 1
    config = TopologyConfig(
        num_groups=num_groups,
        chassis_per_group=chassis,
        blades_per_chassis=blades,
        nodes_per_router=1,
        global_links_per_router=needed,
    )
    topo = DragonflyTopology(config)
    topo.validate()
    sampler = PathSampler(topo, random.Random(0))
    rng = random.Random(1)
    for _ in range(20):
        a = rng.randrange(topo.num_routers)
        b = rng.randrange(topo.num_routers)
        path = sampler.minimal(a, b)
        sampler.validate_path(path)
        assert path[0] == a and path[-1] == b
        assert len(path) - 1 <= 5
