"""Tests for the discrete-event engine and the random-stream registry."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.engine import SimulationError, Simulator
from repro.sim.rng import RandomStreams, derive_seed


class TestSimulatorBasics:
    def test_starts_at_time_zero(self, simulator):
        assert simulator.now == 0
        assert simulator.events_executed == 0

    def test_single_event_executes(self, simulator):
        hits = []
        simulator.schedule(5, hits.append, "a")
        simulator.run()
        assert hits == ["a"]
        assert simulator.now == 5

    def test_events_execute_in_time_order(self, simulator):
        order = []
        simulator.schedule(30, order.append, 3)
        simulator.schedule(10, order.append, 1)
        simulator.schedule(20, order.append, 2)
        simulator.run()
        assert order == [1, 2, 3]

    def test_same_time_events_fifo(self, simulator):
        order = []
        for i in range(10):
            simulator.schedule(7, order.append, i)
        simulator.run()
        assert order == list(range(10))

    def test_zero_delay_allowed(self, simulator):
        hits = []
        simulator.schedule(0, hits.append, 1)
        simulator.run()
        assert hits == [1]
        assert simulator.now == 0

    def test_negative_delay_rejected(self, simulator):
        with pytest.raises(SimulationError):
            simulator.schedule(-1, lambda: None)

    def test_float_delay_rounds_up(self, simulator):
        simulator.schedule(1.2, lambda: None)
        simulator.run()
        assert simulator.now == 2

    def test_nested_scheduling(self, simulator):
        hits = []

        def outer():
            hits.append(("outer", simulator.now))
            simulator.schedule(5, inner)

        def inner():
            hits.append(("inner", simulator.now))

        simulator.schedule(10, outer)
        simulator.run()
        assert hits == [("outer", 10), ("inner", 15)]

    def test_schedule_at_absolute_time(self, simulator):
        hits = []
        simulator.schedule_at(42, hits.append, "x")
        simulator.run()
        assert simulator.now == 42 and hits == ["x"]

    def test_schedule_at_past_rejected(self, simulator):
        simulator.schedule(10, lambda: None)
        simulator.run()
        with pytest.raises(SimulationError):
            simulator.schedule_at(5, lambda: None)

    def test_events_executed_counter(self, simulator):
        for i in range(25):
            simulator.schedule(i, lambda: None)
        simulator.run()
        assert simulator.events_executed == 25


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, simulator):
        hits = []
        event = simulator.schedule(5, hits.append, 1)
        event.cancel()
        simulator.run()
        assert hits == []

    def test_cancel_is_idempotent(self, simulator):
        event = simulator.schedule(5, lambda: None)
        event.cancel()
        event.cancel()
        assert event.cancelled

    def test_other_events_still_fire(self, simulator):
        hits = []
        cancelled = simulator.schedule(5, hits.append, "cancelled")
        simulator.schedule(6, hits.append, "kept")
        cancelled.cancel()
        simulator.run()
        assert hits == ["kept"]

    def test_empty_accounts_for_cancelled(self, simulator):
        event = simulator.schedule(5, lambda: None)
        assert not simulator.empty()
        event.cancel()
        assert simulator.empty()


class TestLiveEventCounter:
    """``empty()`` is O(1): a counter tracks live (non-cancelled) events."""

    def test_counter_follows_schedule_and_execute(self, simulator):
        assert simulator.live_events == 0
        simulator.schedule(1, lambda: None)
        simulator.schedule(2, lambda: None)
        assert simulator.live_events == 2
        simulator.step()
        assert simulator.live_events == 1
        simulator.run()
        assert simulator.live_events == 0
        assert simulator.empty()

    def test_double_cancel_decrements_once(self, simulator):
        keeper = simulator.schedule(3, lambda: None)
        event = simulator.schedule(5, lambda: None)
        event.cancel()
        event.cancel()
        assert simulator.live_events == 1
        assert not simulator.empty()
        del keeper

    def test_empty_with_many_cancelled_entries_is_fast(self, simulator):
        # The heap still holds the cancelled entries; empty() must not scan.
        events = [simulator.schedule(10, lambda: None) for _ in range(1000)]
        for event in events:
            event.cancel()
        assert simulator.pending_events == 1000
        assert simulator.live_events == 0
        assert simulator.empty()
        simulator.run_until_idle()  # drains cancelled entries without firing

    def test_reset_zeroes_counter(self, simulator):
        simulator.schedule(5, lambda: None)
        simulator.reset()
        assert simulator.live_events == 0
        assert simulator.empty()

    def test_cancel_of_pre_reset_handle_is_inert(self, simulator):
        """Event handles that survive a reset() must not corrupt the fresh
        counter (regression: counter went to -1 and empty() stuck False)."""
        stale = simulator.schedule(5, lambda: None)
        simulator.reset()
        stale.cancel()
        assert simulator.live_events == 0
        simulator.schedule(1, lambda: None)
        assert not simulator.empty()
        simulator.run_until_idle()
        assert simulator.empty()

    def test_cancel_after_execution_is_a_noop(self, simulator):
        """A relief-style event that fires and is later cancelled must not
        corrupt the live counter (regression: counter went negative and
        run_until_idle raised on a drained simulator)."""
        event = simulator.schedule(1, lambda: None)
        simulator.step()
        event.cancel()
        assert simulator.live_events == 0
        simulator.schedule(1, lambda: None)
        assert simulator.live_events == 1
        assert not simulator.empty()
        simulator.run_until_idle()
        assert simulator.empty()

    def test_counter_matches_heap_scan(self, simulator):
        events = [simulator.schedule(i % 7, lambda: None) for i in range(50)]
        for event in events[::3]:
            event.cancel()
        scan = sum(1 for entry in simulator._queue if entry[2] is not None)
        assert simulator.live_events == scan


class TestRunControl:
    def test_run_until_horizon(self, simulator):
        hits = []
        simulator.schedule(10, hits.append, 1)
        simulator.schedule(100, hits.append, 2)
        simulator.run(until=50)
        assert hits == [1]
        assert simulator.now == 50
        simulator.run()
        assert hits == [1, 2]

    def test_run_until_with_no_events_advances_clock(self, simulator):
        simulator.run(until=1000)
        assert simulator.now == 1000

    def test_max_events(self, simulator):
        hits = []
        for i in range(10):
            simulator.schedule(i, hits.append, i)
        simulator.run(max_events=3)
        assert hits == [0, 1, 2]

    def test_step(self, simulator):
        hits = []
        simulator.schedule(3, hits.append, "a")
        assert simulator.step() is True
        assert hits == ["a"]
        assert simulator.step() is False

    def test_run_until_idle_raises_on_runaway(self, simulator):
        def reschedule():
            simulator.schedule(1, reschedule)

        simulator.schedule(1, reschedule)
        with pytest.raises(SimulationError):
            simulator.run_until_idle(max_events=100)

    def test_not_reentrant(self, simulator):
        def try_nested_run():
            with pytest.raises(SimulationError):
                simulator.run()

        simulator.schedule(1, try_nested_run)
        simulator.run()

    def test_reset(self, simulator):
        simulator.schedule(5, lambda: None)
        simulator.run()
        simulator.reset()
        assert simulator.now == 0
        assert simulator.pending_events == 0
        assert simulator.events_executed == 0

    @given(delays=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_clock_is_monotonic(self, delays):
        sim = Simulator()
        observed = []
        for delay in delays:
            sim.schedule(delay, lambda: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)
        assert sim.now == max(delays)


class TestRandomStreams:
    def test_derive_seed_is_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_derive_seed_varies_with_name(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_derive_seed_varies_with_master(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_same_name_same_stream(self, streams):
        assert streams.stream("x") is streams.stream("x")

    def test_streams_are_independent(self):
        a = RandomStreams(1)
        b = RandomStreams(1)
        a.stream("noise").random()  # consume from one stream only
        assert a.stream("routing").random() == b.stream("routing").random()

    def test_reproducible_across_instances(self):
        a = [RandomStreams(7).stream("x").random() for _ in range(3)]
        b = [RandomStreams(7).stream("x").random() for _ in range(3)]
        assert a == b

    def test_reseed(self, streams):
        first = streams.stream("x").random()
        streams.reseed(12345)
        assert streams.stream("x").random() == first

    def test_spawn_is_independent(self, streams):
        child = streams.spawn("job1")
        assert child.stream("x").random() != streams.stream("x").random()

    def test_sample_and_choice(self, streams):
        population = list(range(100))
        sample = streams.sample("s", population, 10)
        assert len(set(sample)) == 10
        assert streams.choice("s", population) in population

    def test_shuffled_preserves_elements(self, streams):
        items = list(range(50))
        shuffled = streams.shuffled("sh", items)
        assert sorted(shuffled) == items

    def test_expovariate_positive(self, streams):
        assert streams.expovariate("e", 100.0) > 0

    def test_expovariate_rejects_bad_mean(self, streams):
        with pytest.raises(ValueError):
            streams.expovariate("e", 0.0)

    def test_randint_bounds(self, streams):
        values = [streams.randint("r", 3, 7) for _ in range(100)]
        assert all(3 <= v <= 7 for v in values)
