"""Tests for job allocations and allocation policies."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.allocation.job import JobAllocation
from repro.allocation.policies import (
    AllocationPolicy,
    MachineFullError,
    allocate,
    allocate_contiguous,
    allocate_inter_blade_pair,
    allocate_inter_chassis_pair,
    allocate_inter_group_pair,
    allocate_intra_blade_pair,
    allocate_round_robin_groups,
    allocate_scattered,
    figure3_allocations,
)
from repro.config import TopologyConfig
from repro.topology.geometry import group_of_node, router_of_node


TOPO = TopologyConfig()  # 4 groups x 2 chassis x 4 blades x 4 nodes


class TestJobAllocation:
    def test_basic_properties(self):
        allocation = JobAllocation.of([0, 5, 9], name="x")
        assert len(allocation) == 3
        assert list(allocation) == [0, 5, 9]
        assert allocation[1] == 5

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            JobAllocation.of([])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            JobAllocation.of([1, 1])

    def test_router_and_group_spans(self):
        allocation = JobAllocation.of([0, 1, 2, 3, 4])
        assert len(allocation.routers(TOPO)) == 2  # nodes 0-3 on router 0, node 4 on router 1
        assert allocation.groups(TOPO) == [0]

    def test_span_summary_and_describe(self):
        allocation = JobAllocation.of([0, TOPO.num_nodes - 1], name="pair")
        summary = allocation.span_summary(TOPO)
        assert summary == {"nodes": 2, "routers": 2, "groups": 2}
        assert "pair" in allocation.describe(TOPO)

    def test_coordinates(self):
        allocation = JobAllocation.of([0])
        coords = allocation.coordinates(TOPO)
        assert coords[0].group == 0 and coords[0].slot == 0


class TestPairAllocations:
    def test_intra_blade_pair_shares_router(self):
        pair = allocate_intra_blade_pair(TOPO)
        assert router_of_node(pair[0], TOPO) == router_of_node(pair[1], TOPO)

    def test_inter_blade_pair_same_chassis_different_router(self):
        pair = allocate_inter_blade_pair(TOPO)
        r0, r1 = (router_of_node(n, TOPO) for n in pair)
        assert r0 != r1
        assert group_of_node(pair[0], TOPO) == group_of_node(pair[1], TOPO)

    def test_inter_chassis_pair(self):
        pair = allocate_inter_chassis_pair(TOPO)
        assert group_of_node(pair[0], TOPO) == group_of_node(pair[1], TOPO)
        r0, r1 = (router_of_node(n, TOPO) for n in pair)
        assert (r0 // TOPO.blades_per_chassis) != (r1 // TOPO.blades_per_chassis)

    def test_inter_group_pair(self):
        pair = allocate_inter_group_pair(TOPO)
        assert group_of_node(pair[0], TOPO) != group_of_node(pair[1], TOPO)

    def test_inter_group_pair_explicit_groups(self):
        pair = allocate_inter_group_pair(TOPO, group_a=1, group_b=3)
        assert group_of_node(pair[0], TOPO) == 1
        assert group_of_node(pair[1], TOPO) == 3

    def test_inter_group_same_group_rejected(self):
        with pytest.raises(ValueError):
            allocate_inter_group_pair(TOPO, group_a=1, group_b=1)

    def test_figure3_order(self):
        allocations = figure3_allocations(TOPO)
        assert [a.name for a in allocations] == [
            "inter-nodes",
            "inter-blades",
            "inter-chassis",
            "inter-groups",
        ]

    def test_single_node_per_router_rejected_for_intra_blade(self):
        topo = TopologyConfig(nodes_per_router=1)
        with pytest.raises(ValueError):
            allocate_intra_blade_pair(topo)


class TestMultiNodeAllocations:
    def test_contiguous(self):
        allocation = allocate_contiguous(TOPO, 16)
        assert list(allocation) == list(range(16))

    def test_contiguous_offset(self):
        allocation = allocate_contiguous(TOPO, 8, first_node=4)
        assert list(allocation) == list(range(4, 12))

    def test_contiguous_too_large(self):
        with pytest.raises(ValueError):
            allocate_contiguous(TOPO, TOPO.num_nodes + 1)

    def test_round_robin_spans_groups(self):
        allocation = allocate_round_robin_groups(TOPO, 8)
        assert len(allocation.groups(TOPO)) == TOPO.num_groups

    def test_round_robin_too_large(self):
        with pytest.raises(ValueError):
            allocate_round_robin_groups(TOPO, TOPO.num_nodes + 1)

    def test_scattered_no_duplicates_and_respects_exclude(self):
        rng = random.Random(0)
        exclude = list(range(10))
        allocation = allocate_scattered(TOPO, 20, rng, exclude=exclude)
        assert len(set(allocation)) == 20
        assert not set(allocation) & set(exclude)

    def test_scattered_too_large(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            allocate_scattered(TOPO, TOPO.num_nodes + 1, rng)

    def test_dispatch(self):
        rng = random.Random(1)
        for policy in AllocationPolicy:
            allocation = allocate(policy, TOPO, 8, rng=rng)
            assert len(allocation) == 8

    def test_dispatch_scattered_requires_rng(self):
        with pytest.raises(ValueError):
            allocate(AllocationPolicy.SCATTERED, TOPO, 4)

    @given(num_nodes=st.integers(min_value=1, max_value=TOPO.num_nodes))
    @settings(max_examples=30, deadline=None)
    def test_property_scattered_valid(self, num_nodes):
        rng = random.Random(num_nodes)
        allocation = allocate_scattered(TOPO, num_nodes, rng)
        assert len(allocation) == num_nodes
        assert all(0 <= n < TOPO.num_nodes for n in allocation)
        assert len(set(allocation)) == num_nodes


class TestOccupiedAwareAllocation:
    """Concurrent-job view: policies must skip nodes other jobs hold."""

    def test_contiguous_skips_occupied_prefix(self):
        allocation = allocate_contiguous(TOPO, 4, occupied=range(6))
        assert list(allocation) == [6, 7, 8, 9]

    def test_contiguous_needs_a_contiguous_run(self):
        # Every even node taken: half the machine is free but no run of 2.
        occupied = range(0, TOPO.num_nodes, 2)
        with pytest.raises(MachineFullError):
            allocate_contiguous(TOPO, 2, occupied=occupied)

    def test_contiguous_finds_gap_after_fragmentation(self):
        occupied = [0, 1, 2, 5, 6]  # free run of 2 at [3, 4], big run from 7
        allocation = allocate_contiguous(TOPO, 2, occupied=occupied)
        assert list(allocation) == [3, 4]
        allocation = allocate_contiguous(TOPO, 3, occupied=occupied)
        assert list(allocation) == [7, 8, 9]

    def test_round_robin_skips_occupied(self):
        occupied = set(range(0, TOPO.num_nodes, 3))
        allocation = allocate_round_robin_groups(TOPO, 8, occupied=occupied)
        assert len(allocation) == 8
        assert not set(allocation) & occupied

    def test_scattered_avoids_occupied(self):
        rng = random.Random(7)
        occupied = set(range(20))
        allocation = allocate_scattered(TOPO, 30, rng, occupied=occupied)
        assert len(set(allocation)) == 30
        assert not set(allocation) & occupied

    def test_machine_full_error_reports_counts(self):
        rng = random.Random(0)
        occupied = range(TOPO.num_nodes - 3)
        with pytest.raises(MachineFullError) as excinfo:
            allocate_scattered(TOPO, 4, rng, occupied=occupied)
        err = excinfo.value
        assert isinstance(err, ValueError)  # callers catching ValueError still work
        assert err.requested == 4
        assert err.free == 3
        assert err.total == TOPO.num_nodes
        assert "4 node(s)" in str(err)

    def test_scattered_failure_consumes_no_rng(self):
        # Failed admissions must not advance the allocation stream, or a
        # queued retry would see a different machine than a fresh run.
        rng = random.Random(42)
        state = rng.getstate()
        with pytest.raises(MachineFullError):
            allocate_scattered(TOPO, 4, rng, occupied=range(TOPO.num_nodes - 1))
        assert rng.getstate() == state

    def test_occupied_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            allocate_contiguous(TOPO, 2, occupied=[TOPO.num_nodes])

    def test_dispatch_forwards_occupied(self):
        rng = random.Random(1)
        occupied = set(range(8))
        for policy in AllocationPolicy:
            allocation = allocate(policy, TOPO, 8, rng=rng, occupied=occupied)
            assert len(allocation) == 8
            assert not set(allocation) & occupied

    @given(
        num_nodes=st.integers(min_value=1, max_value=16),
        occupied=st.sets(
            st.integers(min_value=0, max_value=TOPO.num_nodes - 1), max_size=64
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_no_policy_double_allocates(self, num_nodes, occupied):
        rng = random.Random(num_nodes)
        for policy in AllocationPolicy:
            try:
                allocation = allocate(
                    policy, TOPO, num_nodes, rng=rng, occupied=occupied
                )
            except MachineFullError:
                assert TOPO.num_nodes - len(occupied) < num_nodes or (
                    policy is AllocationPolicy.CONTIGUOUS
                )
                continue
            assert len(set(allocation)) == num_nodes
            assert not set(allocation) & occupied
