"""Network flight recorder: fast path, engine neutrality, analytics.

Covers the ISSUE-10 checklist: the off-by-default zero-cost path, payload
byte-identity with probes enabled across all three flit engines and both
flow solver engines, flit/flow series schema compatibility, ring-buffer
decimation bounds, wire and store round-trips of probe sidecars, the
phantom-congestion decision audit, and the heatmap/CSV/Chrome-counter
analytics built on the sidecars.
"""

from __future__ import annotations

import io
import json
import os
import subprocess
import sys

import pytest

from repro.analysis import congestion
from repro.campaign import (
    ArtifactStore,
    DistOptions,
    ensure_builtin_scenarios,
    plan_campaign,
    run_cell,
)
from repro.campaign.dist.protocol import Channel
from repro.telemetry import snapshot_of, Metrics, Tracer
from repro.telemetry.export import chrome_trace, validate_trace
from repro.telemetry.probes import (
    DEFAULT_DECISION_RATE,
    DEFAULT_INTERVAL,
    PROBES,
    ProbeRecorder,
    RingSeries,
    disable_probes,
    enable_probes,
    env_decision_rate,
    env_probe_interval,
    env_probes_enabled,
    probe_capture,
)

SIM_ENGINES = ("calendar", "reference", "batch")
FLOW_SOLVERS = ("reference", "vectorized")


@pytest.fixture(autouse=True)
def _probes_off():
    """Every test starts and ends with probes off and default knobs."""
    disable_probes()
    PROBES.interval = DEFAULT_INTERVAL
    PROBES.decision_rate = DEFAULT_DECISION_RATE
    yield
    disable_probes()
    PROBES.interval = DEFAULT_INTERVAL
    PROBES.decision_rate = DEFAULT_DECISION_RATE


def _spec(backend: str = "flit"):
    ensure_builtin_scenarios()
    plan = plan_campaign(
        ["pingpong-placement"],
        scale="smoke",
        overrides={
            "message_kib": [4],
            "noise": ["none"],
            "placement": ["inter-groups"],
        },
        backend=backend,
    )
    return plan.specs[0]


def _canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True)


# -- disabled fast path -------------------------------------------------------------


class TestDisabledFastPath:
    def test_run_cell_without_probes(self):
        record = run_cell(_spec())
        assert record.ok
        assert record.probes is None

    def test_capture_snapshot_is_none(self):
        with probe_capture() as cap:
            pass
        assert cap.snapshot() is None

    def test_singleton_identity_stable_across_toggles(self):
        before = PROBES
        enable_probes()
        assert PROBES is before and PROBES.enabled
        disable_probes()
        assert PROBES is before and not PROBES.enabled
        assert PROBES.recorder is None

    def test_env_parsing(self):
        assert env_probes_enabled({"REPRO_PROBES": "1"})
        assert env_probes_enabled({"REPRO_PROBES": "yes"})
        assert not env_probes_enabled({"REPRO_PROBES": "0"})
        assert not env_probes_enabled({})
        assert env_probe_interval({"REPRO_PROBE_INTERVAL": "64"}) == 64
        assert env_probe_interval({}) is None
        with pytest.raises(ValueError):
            env_probe_interval({"REPRO_PROBE_INTERVAL": "0"})
        assert env_decision_rate({"REPRO_PROBE_DECISION_RATE": "0.5"}) == 0.5
        assert env_decision_rate({}) is None
        with pytest.raises(ValueError):
            env_decision_rate({"REPRO_PROBE_DECISION_RATE": "1.5"})

    def test_env_var_activates_fresh_interpreter(self):
        code = (
            "from repro.telemetry.probes import PROBES; "
            "print(PROBES.enabled, PROBES.interval)"
        )
        env = dict(os.environ, REPRO_PROBES="1", REPRO_PROBE_INTERVAL="128")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), _repo_src()) if p
        )
        out = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, text=True
        )
        assert out.stdout.strip() == "True 128"

    def test_enable_validates_knobs(self):
        with pytest.raises(ValueError):
            enable_probes(interval=0)
        with pytest.raises(ValueError):
            enable_probes(decision_rate=2.0)


def _repo_src() -> str:
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


# -- ring buffer --------------------------------------------------------------------


class TestRingSeries:
    def test_decimation_bounds_memory(self):
        ring = RingSeries("occupancy", "global", 0, max_points=8)
        for i in range(1000):
            ring.add(i, float(i))
        assert len(ring) <= 8
        assert ring.samples_seen == 1000
        # Stride doubles on each decimation: always a power of two.
        assert ring.stride & (ring.stride - 1) == 0
        # Retained grid stays aligned: every kept t is a stride multiple.
        assert all(t % ring.stride == 0 for t in ring.t)
        # Coverage spans the whole run, not just the tail.
        assert ring.t[0] == 0 and ring.t[-1] >= 1000 - ring.stride

    def test_no_decimation_below_cap(self):
        ring = RingSeries("queue", "local", 1)
        for i in range(100):
            ring.add(i * 256, 1.5)
        assert len(ring) == 100 and ring.stride == 1

    def test_to_dict_schema(self):
        ring = RingSeries("occupancy", "global", 2)
        ring.add(256, 1.23456)
        record = ring.to_dict()
        assert set(record) == {
            "metric", "cls", "group", "t", "v", "stride", "samples_seen",
        }
        assert record["v"] == [1.2346]  # rounded for sidecar compactness


# -- engine neutrality --------------------------------------------------------------


class TestEngineNeutrality:
    """Probes on must never change a payload, on any engine."""

    @pytest.mark.parametrize("engine", SIM_ENGINES)
    def test_flit_payload_byte_identical(self, engine, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", engine)
        spec = _spec("flit")
        plain = run_cell(spec)
        enable_probes(decision_rate=1.0)
        probed = run_cell(spec)
        assert plain.ok and probed.ok
        assert _canonical(plain.payload) == _canonical(probed.payload)
        assert plain.probes is None
        snapshot = probed.probes
        assert snapshot is not None and snapshot["backend"] == "flit"
        assert any(
            s["metric"] == "occupancy" and s["cls"] == "global"
            for s in snapshot["series"]
        )
        assert snapshot["decisions_sampled"] > 0

    @pytest.mark.parametrize("solver", FLOW_SOLVERS)
    def test_flow_payload_byte_identical(self, solver, monkeypatch):
        monkeypatch.setenv("REPRO_FLOW_SOLVER", solver)
        spec = _spec("flow")
        plain = run_cell(spec)
        enable_probes()
        probed = run_cell(spec)
        assert plain.ok and probed.ok
        assert _canonical(plain.payload) == _canonical(probed.payload)
        snapshot = probed.probes
        assert snapshot is not None and snapshot["backend"] == "flow"
        assert any(s["metric"] == "occupancy" for s in snapshot["series"])

    def test_probe_snapshots_are_deterministic(self):
        spec = _spec("flit")
        enable_probes(decision_rate=1.0)
        first = run_cell(spec)
        second = run_cell(spec)
        assert _canonical(first.probes) == _canonical(second.probes)


class TestSchemaCompat:
    """Flit and flow emit the same series schema (same record fields)."""

    def _series(self, backend):
        enable_probes()
        record = run_cell(_spec(backend))
        assert record.probes is not None
        return record.probes["series"]

    def test_flow_series_shape_matches_flit(self):
        flit = self._series("flit")
        flow = self._series("flow")
        assert flit and flow
        flit_fields = {frozenset(s) for s in flit}
        flow_fields = {frozenset(s) for s in flow}
        assert flit_fields == flow_fields  # identical record schema
        # Flow's metric set is a subset: no per-flit "queue" analogue.
        flit_metrics = {s["metric"] for s in flit}
        flow_metrics = {s["metric"] for s in flow}
        assert flow_metrics <= flit_metrics
        assert "occupancy" in flow_metrics
        # Both carry every fabric class plus NIC counters.
        for series in (flit, flow):
            assert {"local", "global", "injection", "nic"} <= {
                s["cls"] for s in series
            }


# -- routing-decision audit ---------------------------------------------------------


class TestDecisionAudit:
    def test_audit_records_full_decisions(self):
        enable_probes(decision_rate=1.0)
        record = run_cell(_spec("flit"))
        snapshot = record.probes
        assert snapshot["decisions_seen"] >= snapshot["decisions_sampled"] > 0
        assert 0 <= snapshot["flips"] <= snapshot["decisions_sampled"]
        decision = snapshot["decisions"][0]
        assert set(decision) >= {
            "t", "src", "dst", "mode", "bias", "penalty", "chosen",
            "minimal", "live_choice", "flip", "candidates",
        }
        for candidate in decision["candidates"]:
            assert set(candidate) >= {
                "path", "minimal", "queue", "far_stale", "far_live",
                "score", "score_live",
            }
        # The stored flip flags agree with the flip counter (below the
        # MAX_DECISIONS cap the stored list is the complete sample).
        if snapshot["decisions_sampled"] == len(snapshot["decisions"]):
            assert snapshot["flips"] == sum(
                1 for d in snapshot["decisions"] if d["flip"]
            )

    def test_zero_rate_counts_but_never_samples(self):
        enable_probes(decision_rate=0.0)
        record = run_cell(_spec("flit"))
        snapshot = record.probes
        assert snapshot["decisions_seen"] > 0
        assert snapshot["decisions_sampled"] == 0 and snapshot["decisions"] == []

    def test_decision_cap_bounds_memory(self):
        recorder = ProbeRecorder(max_decisions=3)
        for i in range(10):
            recorder.record_decision({"t": i, "flip": i % 2 == 0})
        assert len(recorder.decisions) == 3
        assert recorder.decisions_sampled == 10
        assert recorder.flips == 5


# -- wire round-trip ----------------------------------------------------------------


class TestWire:
    def _roundtrip(self, message):
        buffer = io.BytesIO()
        Channel(io.BytesIO(), buffer).send(message)
        buffer.seek(0)
        return Channel(buffer, io.BytesIO()).recv()

    def test_result_frame_with_probes(self):
        enable_probes(decision_rate=1.0)
        spec = _spec("flit")
        record = run_cell(spec)
        frame = {
            "type": "result",
            "shard": 1,
            "spec": spec.to_wire(),
            "elapsed_s": record.elapsed_s,
            "error": "",
            "payload": record.payload,
            "report": record.report,
            "probes": record.probes,
        }
        received = self._roundtrip(frame)
        assert _canonical(received["probes"]) == _canonical(record.probes)

    def test_result_frame_without_probes_still_parses(self):
        frame = {
            "type": "result",
            "shard": 0,
            "spec": _spec().to_wire(),
            "elapsed_s": 0.0,
            "error": "",
        }
        received = self._roundtrip(frame)
        assert "probes" not in received  # additive field, absent when off

    def test_dist_options_validation(self):
        with pytest.raises(ValueError):
            DistOptions(probe_interval=64)  # needs probes=True
        with pytest.raises(ValueError):
            DistOptions(probes=True, probe_interval=0)
        with pytest.raises(ValueError):
            DistOptions(probes=True, probe_decision_rate=1.5)
        options = DistOptions(probes=True, probe_interval=64,
                              probe_decision_rate=0.5)
        assert options.probes and options.probe_interval == 64


# -- store round-trip ---------------------------------------------------------------


class TestStoreRoundTrip:
    def _saved_store(self, tmp_path):
        enable_probes(decision_rate=1.0)
        spec = _spec("flit")
        record = run_cell(spec)
        store = ArtifactStore(tmp_path / "store")
        store.save(spec, record.payload, record.report, record.elapsed_s,
                   probes=record.probes)
        return store, spec, record

    def test_sidecar_lands_next_to_results(self, tmp_path):
        store, spec, record = self._saved_store(tmp_path)
        assert store.has_probes(spec)
        assert store.probe_path(spec).exists()
        loaded = store.load_probes(spec)
        assert _canonical(loaded) == _canonical(record.probes)
        entry = store.index()[spec.spec_hash()]
        assert entry["probes"] == f"probes/{spec.spec_hash()}.json"
        summary = entry["probe_summary"]
        assert summary["backend"] == "flit"
        assert summary["series"] == len(record.probes["series"])
        # The payload itself never carries probe data.
        payload = store.load(spec)
        assert "probes" not in payload

    def test_iter_probe_snapshots_attributes_cells(self, tmp_path):
        store, spec, _record = self._saved_store(tmp_path)
        reopened = ArtifactStore(store.root)
        (frame,) = list(reopened.iter_probe_snapshots())
        assert frame["hash"] == spec.spec_hash()
        assert frame["scenario"] == spec.scenario
        assert frame["series"]

    def test_entries_without_probes_are_tolerated(self, tmp_path):
        spec = _spec("flow")
        record = run_cell(spec)
        store = ArtifactStore(tmp_path / "store")
        store.save(spec, record.payload, record.report, record.elapsed_s)
        assert not store.has_probes(spec)
        with pytest.raises(KeyError):
            store.load_probes(spec)
        assert list(store.iter_probe_snapshots()) == []


# -- analytics ----------------------------------------------------------------------


def _synthetic_frames():
    """Two cells' worth of hand-built series + decisions."""
    return [
        {
            "hash": "aaaa",
            "scenario": "pingpong-placement",
            "series": [
                {"metric": "occupancy", "cls": "global", "group": 0,
                 "t": [0, 100, 200, 300], "v": [1.0, 2.0, 3.0, 4.0]},
                {"metric": "occupancy", "cls": "local", "group": 1,
                 "t": [0, 100, 200, 300], "v": [0.0, 0.0, 1.0, 1.0]},
                {"metric": "occupancy", "cls": "nic", "group": 0,
                 "t": [0, 300], "v": [9.0, 9.0]},
            ],
            "decisions": [
                {"t": 5, "src": 0, "dst": 7, "minimal": True, "flip": True,
                 "candidates": [{}, {}]},
            ],
            "decisions_seen": 50,
            "decisions_sampled": 2,
            "flips": 1,
        },
        {
            "hash": "bbbb",
            "scenario": "pingpong-placement",
            "series": [
                {"metric": "occupancy", "cls": "global", "group": 0,
                 "t": [0, 300], "v": [2.0, 2.0]},
            ],
            "decisions": [],
            "decisions_seen": 10,
            "decisions_sampled": 0,
            "flips": 0,
        },
    ]


class TestCongestionAnalytics:
    def test_group_time_heatmap_shape_and_means(self):
        heatmap = congestion.group_time_heatmap(_synthetic_frames(), bins=2)
        assert heatmap["groups"] == [0, 1]
        assert heatmap["bins"] == 2
        # Group 0, first bin: occupancy points 1.0, 2.0 (cell a) and 2.0,
        # 2.0 spans both bins -> first-bin points are 1.0, 2.0, 2.0.
        assert heatmap["matrix"][0][0] == pytest.approx(5.0 / 3.0, abs=1e-4)
        # NIC series excluded from the fabric heatmap.
        assert all(v is None or v < 9.0
                   for row in heatmap["matrix"] for v in row)

    def test_heatmap_render_and_csv(self):
        heatmap = congestion.group_time_heatmap(_synthetic_frames(), bins=4)
        text = congestion.render_heatmap(heatmap)
        assert "g00 |" in text and "g01 |" in text
        assert "occupancy" in text
        csv_text = congestion.heatmap_csv(heatmap)
        lines = csv_text.strip().splitlines()
        assert lines[0].startswith("group,")
        assert len(lines) == 3  # header + two groups
        assert lines[1].startswith("g0,")

    def test_heatmap_none_when_no_matching_series(self):
        assert congestion.group_time_heatmap(
            _synthetic_frames(), metric="nonexistent"
        ) is None

    def test_link_rank_orders_hottest_first(self):
        rows = congestion.link_rank(_synthetic_frames())
        assert rows[0]["cls"] == "nic" and rows[0]["mean"] == 9.0
        means = [row["mean"] for row in rows]
        assert means == sorted(means, reverse=True)
        ranked = congestion.render_link_rank(rows, "occupancy")
        assert "hotspots" in ranked

    def test_phantom_summary_pools_cells(self):
        summary = congestion.phantom_summary(_synthetic_frames())
        assert summary["decisions_seen"] == 60
        assert summary["decisions_sampled"] == 2
        assert summary["flips"] == 1
        assert summary["flip_fraction"] == 0.5
        assert len(summary["examples"]) == 1
        text = congestion.render_phantom(summary)
        assert "would flip" in text

    def test_job_alignment_with_cluster_columns(self, tmp_path):
        (tmp_path / "results").mkdir()
        (tmp_path / "results" / "cccc.json").write_text(
            json.dumps({"data": {"jobs": [
                {"workload": "alltoall", "job_id": 1, "start": 0,
                 "finish": 200, "slowdown": 1.5},
                {"workload": "pingpong", "job_id": 2, "start": 200,
                 "finish": 400, "slowdown": 1.1},
            ]}}),
            encoding="utf-8",
        )

        class _FakeStore:
            root = tmp_path

            def index(self):
                return {"cccc": {"scenario": "cluster-trace",
                                 "result": "results/cccc.json"}}

        frames = [{
            "hash": "cccc",
            "scenario": "cluster-trace",
            "series": [
                {"metric": "occupancy", "cls": "global", "group": 0,
                 "t": [0, 100, 200, 300], "v": [2.0, 4.0, 6.0, 8.0]},
            ],
        }]
        rows = congestion.job_alignment(_FakeStore(), frames)
        assert [row["job_id"] for row in rows] == [1, 2]  # worst first
        assert rows[0]["mean_occupancy"] == pytest.approx(4.0)  # t in 0..200
        assert rows[1]["mean_occupancy"] == pytest.approx(7.0)  # t in 200..400
        table = congestion.render_job_alignment(rows, "occupancy")
        assert "alltoall" in table


# -- chrome counter export ----------------------------------------------------------


class TestChromeCounters:
    def test_probe_sidecars_become_counter_tracks(self, tmp_path):
        enable_probes()
        spec = _spec("flit")
        record = run_cell(spec)
        store = ArtifactStore(tmp_path / "store")
        store.save(spec, record.payload, record.report, record.elapsed_s,
                   probes=record.probes)
        trace = chrome_trace(store)
        assert validate_trace(trace) == []
        counters = [ev for ev in trace["traceEvents"] if ev.get("ph") == "C"]
        assert counters
        assert all(ev["pid"] == 3 for ev in counters)
        names = {ev["name"] for ev in counters}
        assert any(name.startswith("occupancy") for name in names)
        # Counter args carry per-group values on sim-cycle timestamps.
        sample = counters[0]
        assert isinstance(sample["args"], dict) and sample["ts"] >= 0

    def test_validate_flags_malformed_counters(self):
        problems = validate_trace(
            {"traceEvents": [
                {"name": "x", "ph": "C", "pid": 3, "tid": 1, "ts": -1},
            ]}
        )
        assert any("bad 'ts'" in p for p in problems)
        assert any("counter without args" in p for p in problems)

    def test_stores_without_probes_emit_no_counter_rows(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        trace = chrome_trace(store)
        assert all(ev.get("ph") != "C" for ev in trace["traceEvents"])


# -- tracer cap surfacing -----------------------------------------------------------


class TestEventsDropped:
    def test_snapshot_surfaces_events_dropped(self):
        tracer = Tracer(max_events=2)
        for _ in range(5):
            with tracer.span("tick", cat="test"):
                pass
        snapshot = snapshot_of(tracer, Metrics())
        assert snapshot["events_dropped"] == 3
        assert snapshot["dropped"] == 3  # legacy alias kept
