"""Tests for Algorithm 1 (the application-aware routing selector)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import NicConfig
from repro.core.perf_model import estimate_transmission_cycles, flits_and_packets
from repro.core.selector import AppAwareSelector, SelectorParams
from repro.routing.modes import RoutingMode

NIC = NicConfig()


def make_selector(**params) -> AppAwareSelector:
    return AppAwareSelector(NIC, SelectorParams(**params) if params else None)


class TestSelectorParams:
    def test_defaults(self):
        params = SelectorParams()
        assert params.threshold_bytes == 4096
        assert params.lambda_ad < 1.0 < params.sigma_ad

    def test_duals_are_inverses(self):
        params = SelectorParams()
        assert params.lambda_bs == pytest.approx(1.0 / params.lambda_ad)
        assert params.sigma_bs == pytest.approx(1.0 / params.sigma_ad)

    def test_validation(self):
        with pytest.raises(ValueError):
            SelectorParams(threshold_bytes=-1)
        with pytest.raises(ValueError):
            SelectorParams(lambda_ad=0.0)
        with pytest.raises(ValueError):
            SelectorParams(max_age_samples=0)

    def test_invalid_initial_mode(self):
        with pytest.raises(ValueError):
            AppAwareSelector(NIC, initial_mode=RoutingMode.MIN_HASH)


class TestThresholdBehaviour:
    def test_small_cumulative_traffic_uses_high_bias(self):
        selector = make_selector()
        # 1 KiB << 4 KiB threshold: route with High Bias, no algorithm run.
        assert selector.select_routing(1024) is RoutingMode.ADAPTIVE_3
        assert selector.current_mode is RoutingMode.ADAPTIVE_0  # unchanged

    def test_cumulative_counter_triggers_algorithm(self):
        selector = make_selector()
        selector.observe(1000.0, 0.1, RoutingMode.ADAPTIVE_0)
        # Three 2 KiB messages: the third crosses the 4 KiB threshold.
        selector.select_routing(2048)
        mode_before = selector.current_mode
        selector.select_routing(2048)
        # Algorithm ran at least once: cumulative counter was reset.
        assert selector._cumulative_bytes < 4096
        assert selector.current_mode in (RoutingMode.ADAPTIVE_0, RoutingMode.ADAPTIVE_3)
        del mode_before

    def test_zero_threshold_always_runs_algorithm(self):
        selector = make_selector(threshold_bytes=0)
        selector.observe(1000.0, 0.1, RoutingMode.ADAPTIVE_0)
        mode = selector.select_routing(64)
        assert mode in (RoutingMode.ADAPTIVE_0, RoutingMode.ADAPTIVE_3)


class TestDecisionLogic:
    def test_no_observation_keeps_current_mode(self):
        selector = make_selector(threshold_bytes=0)
        assert selector.select_routing(1 << 20) is RoutingMode.ADAPTIVE_0

    def test_small_message_prefers_high_bias_when_latency_lower(self):
        """Small messages are latency-bound: High Bias (lower L) should win."""
        selector = make_selector(threshold_bytes=0)
        selector.observe(10_000.0, 0.05, RoutingMode.ADAPTIVE_0)
        mode = selector.select_routing(64)
        assert mode is RoutingMode.ADAPTIVE_3

    def test_large_message_prefers_adaptive_when_stalls_matter(self):
        """Large messages are bandwidth-bound: the mode with fewer stalls wins."""
        selector = make_selector(threshold_bytes=0, lambda_ad=0.9, sigma_ad=3.0)
        selector.observe(5_000.0, 0.5, RoutingMode.ADAPTIVE_0)
        mode = selector.select_routing(4 << 20)
        assert mode is RoutingMode.ADAPTIVE_0

    def test_direct_observations_override_scaling(self):
        """A fresh observation of the other mode is preferred to the estimate."""
        selector = make_selector(threshold_bytes=0)
        selector.observe(1000.0, 0.1, RoutingMode.ADAPTIVE_0)
        # Directly observed: High Bias is dramatically worse.
        selector.observe(50_000.0, 5.0, RoutingMode.ADAPTIVE_3)
        assert selector.select_routing(1 << 20) is RoutingMode.ADAPTIVE_0
        # Now directly observed: High Bias is dramatically better.
        selector.observe(100.0, 0.0, RoutingMode.ADAPTIVE_3)
        assert selector.select_routing(1 << 20) is RoutingMode.ADAPTIVE_3

    def test_decision_matches_equation2_comparison(self):
        """The selector's choice equals a direct Equation-2 comparison."""
        selector = make_selector(threshold_bytes=0)
        latency_ad, stall_ad = 8_000.0, 0.2
        latency_bs, stall_bs = 5_000.0, 0.9
        selector.observe(latency_ad, stall_ad, RoutingMode.ADAPTIVE_0)
        selector.observe(latency_bs, stall_bs, RoutingMode.ADAPTIVE_3)
        for size in (64, 1024, 64 * 1024, 4 << 20):
            expected_bias_better = estimate_transmission_cycles(
                size, latency_bs, stall_bs, NIC
            ) < estimate_transmission_cycles(size, latency_ad, stall_ad, NIC)
            mode = selector.select_routing(size)
            # Re-prime the observations (select_routing ages them).
            selector.observe(latency_ad, stall_ad, RoutingMode.ADAPTIVE_0)
            selector.observe(latency_bs, stall_bs, RoutingMode.ADAPTIVE_3)
            assert (mode is RoutingMode.ADAPTIVE_3) == expected_bias_better

    def test_threshold_form_matches_direct_comparison(self):
        """Equation 4 (flit threshold) agrees with the Equation-2 comparison."""
        selector = make_selector(threshold_bytes=0)
        latency_ad, stall_ad = 9_000.0, 0.1
        latency_bs, stall_bs = 6_000.0, 0.8
        for size in (256, 4096, 256 * 1024):
            flits, packets = flits_and_packets(size, NIC)
            threshold = selector.flit_threshold(
                latency_ad, stall_ad, latency_bs, stall_bs, packets
            )
            direct = estimate_transmission_cycles(
                size, latency_bs, stall_bs, NIC
            ) < estimate_transmission_cycles(size, latency_ad, stall_ad, NIC)
            assert (flits < threshold) == direct

    def test_flit_threshold_division_by_zero(self):
        selector = make_selector()
        with pytest.raises(ZeroDivisionError):
            selector.flit_threshold(1.0, 0.5, 2.0, 0.5, 10)

    def test_alltoall_uses_imb_instead_of_adaptive(self):
        selector = make_selector(threshold_bytes=0, lambda_ad=0.9, sigma_ad=5.0)
        selector.observe(5_000.0, 1.0, RoutingMode.ADAPTIVE_0)
        mode = selector.select_routing(4 << 20, is_alltoall=True)
        assert mode is RoutingMode.ADAPTIVE_1

    def test_alltoall_high_bias_not_replaced(self):
        selector = make_selector(threshold_bytes=0)
        selector.observe(10_000.0, 0.0, RoutingMode.ADAPTIVE_0)
        mode = selector.select_routing(64, is_alltoall=True)
        assert mode is RoutingMode.ADAPTIVE_3


class TestStaleness:
    def test_old_observations_expire(self):
        selector = make_selector(threshold_bytes=0, max_age_samples=3)
        selector.observe(1000.0, 0.1, RoutingMode.ADAPTIVE_0)
        selector.observe(100.0, 0.0, RoutingMode.ADAPTIVE_3)  # bias looks great
        # Age the bias observation beyond the limit.
        for _ in range(5):
            selector.select_routing(1 << 20)
            selector.observe(1000.0, 0.1, RoutingMode.ADAPTIVE_0)
        # The stale direct observation must no longer be trusted; the scaled
        # estimate is used instead (derived from the adaptive observation).
        assert not selector._bias_obs.valid(selector.params.max_age_samples)


class TestAccounting:
    def test_traffic_fractions(self):
        selector = make_selector(threshold_bytes=0)
        selector.observe(10_000.0, 0.0, RoutingMode.ADAPTIVE_0)
        selector.select_routing(1024)  # small → high bias
        assert selector.default_traffic_fraction <= 0.5

    def test_fraction_empty(self):
        assert make_selector().default_traffic_fraction == 0.0

    def test_switch_counter(self):
        selector = make_selector(threshold_bytes=0)
        selector.observe(10_000.0, 0.0, RoutingMode.ADAPTIVE_0)
        selector.select_routing(64)  # switches to high bias
        assert selector.switches >= 1

    def test_reset(self):
        selector = make_selector(threshold_bytes=0)
        selector.observe(10_000.0, 0.0, RoutingMode.ADAPTIVE_0)
        selector.select_routing(64)
        selector.reset()
        assert selector.decisions == 0
        assert selector.current_mode is RoutingMode.ADAPTIVE_0
        assert selector.default_traffic_fraction == 0.0

    @given(
        sizes=st.lists(st.integers(min_value=8, max_value=1 << 20), min_size=1, max_size=50),
        latency=st.floats(min_value=1.0, max_value=1e5),
        stall=st.floats(min_value=0.0, max_value=10.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_selector_always_returns_valid_mode(self, sizes, latency, stall):
        selector = make_selector()
        valid = {RoutingMode.ADAPTIVE_0, RoutingMode.ADAPTIVE_1, RoutingMode.ADAPTIVE_3}
        for size in sizes:
            mode = selector.select_routing(size, is_alltoall=(size % 2 == 0))
            assert mode in valid
            selector.observe(latency, stall)
        assert selector.bytes_default + selector.bytes_high_bias == sum(sizes)
