"""Tests for the credit-flow-controlled link model."""

from __future__ import annotations

import pytest

from repro.config import NicConfig
from repro.network.link import Link
from repro.network.packet import Message, Packet
from repro.routing.modes import RoutingMode
from repro.sim.engine import Simulator

NIC = NicConfig()


def make_packet(flits=5):
    message = Message(0, 1, 64, RoutingMode.ADAPTIVE_0, NIC)
    return Packet(message, 0, 1, flits=flits)


def make_link(sim, deliver, latency=10, width=1, buffer_flits=20, cycles_per_flit=1, **kwargs):
    return Link(
        sim=sim,
        name="test-link",
        latency=latency,
        width=width,
        buffer_flits=buffer_flits,
        cycles_per_flit=cycles_per_flit,
        deliver=deliver,
        **kwargs,
    )


class TestDelivery:
    def test_single_packet_latency(self):
        sim = Simulator()
        arrivals = []
        link = make_link(sim, lambda p, l: arrivals.append((p, sim.now)))
        packet = make_packet(flits=5)
        link.enqueue(packet)
        sim.run()
        assert len(arrivals) == 1
        # serialization (5 flits) + latency (10)
        assert arrivals[0][1] == 15

    def test_wider_link_serializes_faster(self):
        sim = Simulator()
        arrivals = []
        link = make_link(sim, lambda p, l: arrivals.append(sim.now), width=5)
        link.enqueue(make_packet(flits=5))
        sim.run()
        assert arrivals[0] == 11  # ceil(5/5)=1 cycle + 10 latency

    def test_slower_serialization(self):
        sim = Simulator()
        arrivals = []
        link = make_link(sim, lambda p, l: arrivals.append(sim.now), cycles_per_flit=3)
        link.enqueue(make_packet(flits=5))
        sim.run()
        assert arrivals[0] == 15 + 10  # 5*3 serialization + latency

    def test_packets_delivered_in_order(self):
        sim = Simulator()
        arrivals = []
        link = make_link(sim, lambda p, l: arrivals.append(p.id), buffer_flits=100)
        packets = [make_packet() for _ in range(5)]
        for packet in packets:
            link.enqueue(packet)
        sim.run()
        assert arrivals == [p.id for p in packets]

    def test_serialization_pipelines_back_to_back(self):
        sim = Simulator()
        arrivals = []
        link = make_link(sim, lambda p, l: arrivals.append(sim.now), buffer_flits=100)
        link.enqueue(make_packet(flits=5))
        link.enqueue(make_packet(flits=5))
        sim.run()
        # Second packet starts serializing right after the first (5 cycles).
        assert arrivals == [15, 20]

    def test_missing_deliver_callback_raises(self):
        sim = Simulator()
        link = make_link(sim, None)
        link.enqueue(make_packet())
        with pytest.raises(RuntimeError):
            sim.run()

    def test_statistics_counters(self):
        sim = Simulator()
        link = make_link(sim, lambda p, l: None, buffer_flits=100)
        link.enqueue(make_packet(flits=5))
        link.enqueue(make_packet(flits=3))
        sim.run()
        assert link.packets_forwarded == 2
        assert link.flits_forwarded == 8


class TestCredits:
    def test_credits_consumed_and_not_returned_until_release(self):
        sim = Simulator()
        link = make_link(sim, lambda p, l: None, buffer_flits=10)
        link.enqueue(make_packet(flits=5))
        sim.run()
        assert link.credits == link.capacity - 5

    def test_blocks_when_credits_exhausted(self):
        sim = Simulator()
        delivered = []
        link = make_link(
            sim, lambda p, l: delivered.append(p), buffer_flits=5, deadlock_timeout=10**9
        )
        link.enqueue(make_packet(flits=5))
        link.enqueue(make_packet(flits=5))
        sim.run(until=100_000)
        # Only the first packet fits in the downstream buffer.
        assert len(delivered) == 1
        assert len(link.queue) == 1

    def test_resumes_when_credits_return(self):
        sim = Simulator()
        delivered = []
        link = make_link(
            sim, lambda p, l: delivered.append(p), buffer_flits=5, deadlock_timeout=10**9
        )
        link.enqueue(make_packet(flits=5))
        link.enqueue(make_packet(flits=5))
        sim.run(until=100_000)
        link.return_credits(5)
        sim.run(until=200_000)
        assert len(delivered) == 2

    def test_credit_overflow_detected(self):
        sim = Simulator()
        link = make_link(sim, lambda p, l: None)
        link.return_credits(1)
        # Credit returns settle lazily: the overflow surfaces at the first
        # read after the batch's arrival cycle, not via a scheduled event.
        sim.run(until=link.latency)
        with pytest.raises(RuntimeError):
            link.occupancy

    def test_holding_link_released_on_next_hop(self):
        sim = Simulator()
        second_arrivals = []
        second = make_link(sim, lambda p, l: second_arrivals.append(p), buffer_flits=50)
        first = make_link(sim, lambda p, l: second.enqueue(p), buffer_flits=50)
        packet = make_packet(flits=5)
        first.enqueue(packet)
        sim.run()
        assert second_arrivals
        # After the second link forwarded the packet, the first link's credits
        # must have been returned (the packet left its downstream buffer).
        # The in-flight batch lands one wire latency after the release; run
        # the clock past it and read through the settling probe.
        sim.run(until=sim.now + first.latency)
        assert first.occupancy == 0
        assert first.credits == first.capacity
        assert packet.holding_link is second

    def test_occupancy_property(self):
        sim = Simulator()
        link = make_link(sim, lambda p, l: None, buffer_flits=10)
        link.enqueue(make_packet(flits=4))
        sim.run()
        assert link.occupancy == 4


class TestCongestionProbes:
    def test_local_congestion_counts_queued_flits(self):
        sim = Simulator()
        link = make_link(
            sim, lambda p, l: None, buffer_flits=5, deadlock_timeout=10**9
        )
        link.enqueue(make_packet(flits=5))
        link.enqueue(make_packet(flits=5))
        link.enqueue(make_packet(flits=5))
        sim.run(until=100_000)
        # One packet is in flight/downstream, two still queued upstream.
        assert link.local_congestion() == 10.0

    def test_far_congestion_zero_delay_is_current(self):
        sim = Simulator()
        link = make_link(sim, lambda p, l: None, buffer_flits=10)
        link.enqueue(make_packet(flits=5))
        sim.run()
        assert link.far_congestion(0) == float(link.occupancy)

    def test_far_congestion_is_delayed(self):
        sim = Simulator()
        link = make_link(sim, lambda p, l: None, buffer_flits=20)
        link.enqueue(make_packet(flits=5))
        sim.run()
        # The occupancy changed at t<=5; with a huge delay we still see 0.
        assert link.far_congestion(10_000) == 0.0
        # Let time pass so the change becomes visible through the delay.
        sim.schedule(500, lambda: None)
        sim.run()
        assert link.far_congestion(100) == 5.0

    def test_total_congestion_combines_terms(self):
        sim = Simulator()
        link = make_link(sim, lambda p, l: None, buffer_flits=5)
        link.enqueue(make_packet(flits=5))
        link.enqueue(make_packet(flits=5))
        sim.run()
        assert link.total_congestion(0) == link.local_congestion() + link.occupancy


class TestStallMeasurement:
    def test_stalls_reported_on_backpressure(self):
        sim = Simulator()
        stalls = []
        link = make_link(
            sim,
            lambda p, l: None,
            buffer_flits=5,
            measure_stalls=True,
            on_stall=lambda cycles, packet: stalls.append(cycles),
            deadlock_timeout=10**9,
        )
        link.enqueue(make_packet(flits=5))
        link.enqueue(make_packet(flits=5))
        sim.run(until=50_000)
        assert not stalls  # still blocked, stall not yet accounted
        link.return_credits(5)
        sim.run(until=100_000)
        assert len(stalls) == 1
        assert stalls[0] > 0

    def test_no_stall_without_backpressure(self):
        sim = Simulator()
        stalls = []
        link = make_link(
            sim,
            lambda p, l: None,
            buffer_flits=100,
            measure_stalls=True,
            on_stall=lambda cycles, packet: stalls.append(cycles),
        )
        for _ in range(5):
            link.enqueue(make_packet(flits=5))
        sim.run()
        assert stalls == []

    def test_inject_start_time_set_for_measured_links(self):
        sim = Simulator()
        link = make_link(sim, lambda p, l: None, measure_stalls=True)
        packet = make_packet()
        link.enqueue(packet)
        sim.run()
        assert packet.inject_start_time == 0

    def test_on_transmit_hook_called_before_send(self):
        sim = Simulator()
        seen = []
        link = make_link(sim, lambda p, l: None)
        link.on_transmit = lambda packet: seen.append(packet.id)
        packet = make_packet()
        link.enqueue(packet)
        sim.run()
        assert seen == [packet.id]

    def test_queue_wait_cycles_accumulate(self):
        sim = Simulator()
        link = make_link(sim, lambda p, l: None, buffer_flits=100)
        link.enqueue(make_packet(flits=5))
        link.enqueue(make_packet(flits=5))
        sim.run()
        # The second packet waited for the first one's serialization.
        assert link.queue_wait_cycles >= 5


class TestDeadlockRelief:
    def test_escape_valve_fires_after_timeout(self):
        sim = Simulator()
        delivered = []
        link = make_link(
            sim,
            lambda p, l: delivered.append(p),
            buffer_flits=5,
            deadlock_timeout=1_000,
        )
        link.enqueue(make_packet(flits=5))
        link.enqueue(make_packet(flits=5))  # blocks: no credits ever return
        sim.run()
        assert len(delivered) == 2
        assert link.deadlock_reliefs >= 1
        assert link.credits < 0  # borrowed credits are tracked

    def test_validation_errors(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            make_link(sim, None, latency=-1)
        with pytest.raises(ValueError):
            make_link(sim, None, width=0)
        with pytest.raises(ValueError):
            make_link(sim, None, buffer_flits=0)
