"""Tests for the configuration dataclasses."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import (
    HostConfig,
    NicConfig,
    RoutingConfig,
    SimulationConfig,
    TopologyConfig,
)


class TestTopologyConfig:
    def test_defaults_are_valid(self):
        topo = TopologyConfig()
        assert topo.num_routers == topo.num_groups * topo.routers_per_group
        assert topo.num_nodes == topo.num_routers * topo.nodes_per_router

    def test_routers_per_group(self):
        topo = TopologyConfig(num_groups=3, chassis_per_group=2, blades_per_chassis=5)
        assert topo.routers_per_group == 10
        assert topo.num_routers == 30

    def test_num_nodes(self):
        topo = TopologyConfig(num_groups=2, chassis_per_group=2, blades_per_chassis=2, nodes_per_router=3)
        assert topo.num_nodes == 2 * 4 * 3

    def test_rejects_zero_groups(self):
        with pytest.raises(ValueError):
            TopologyConfig(num_groups=0)

    def test_rejects_zero_chassis(self):
        with pytest.raises(ValueError):
            TopologyConfig(chassis_per_group=0)

    def test_rejects_zero_blades(self):
        with pytest.raises(ValueError):
            TopologyConfig(blades_per_chassis=0)

    def test_rejects_zero_nodes_per_router(self):
        with pytest.raises(ValueError):
            TopologyConfig(nodes_per_router=0)

    def test_rejects_no_global_links_with_multiple_groups(self):
        with pytest.raises(ValueError):
            TopologyConfig(num_groups=2, global_links_per_router=0)

    def test_rejects_tiny_buffers(self):
        with pytest.raises(ValueError):
            TopologyConfig(router_buffer_flits=4)

    def test_global_connectivity_validation(self):
        # 2 routers per group x 1 link each = 2 endpoints, but 8 other groups.
        topo = TopologyConfig(
            num_groups=9,
            chassis_per_group=1,
            blades_per_chassis=2,
            global_links_per_router=1,
        )
        with pytest.raises(ValueError):
            topo.validate_global_connectivity()

    def test_aries_like_geometry(self):
        topo = TopologyConfig.aries_like(num_groups=4)
        assert topo.chassis_per_group == 6
        assert topo.blades_per_chassis == 16
        assert topo.routers_per_group == 96

    def test_tiny_geometry(self):
        topo = TopologyConfig.tiny()
        assert topo.num_groups == 2
        assert topo.num_nodes == 16

    def test_frozen(self):
        topo = TopologyConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            topo.num_groups = 10


class TestNicConfig:
    def test_defaults_match_aries(self):
        nic = NicConfig()
        assert nic.packet_payload_bytes == 64
        assert nic.max_outstanding_packets == 1024
        assert nic.header_flits + nic.max_payload_flits == 5

    def test_flit_coverage_validation(self):
        with pytest.raises(ValueError):
            NicConfig(packet_payload_bytes=128, flit_payload_bytes=16, max_payload_flits=4)

    def test_rejects_nonpositive_packet_bytes(self):
        with pytest.raises(ValueError):
            NicConfig(packet_payload_bytes=0)

    def test_rejects_zero_window(self):
        with pytest.raises(ValueError):
            NicConfig(max_outstanding_packets=0)

    def test_cycle_time_conversions_roundtrip(self):
        nic = NicConfig()
        assert nic.us_to_cycles(nic.cycles_to_us(12345)) == pytest.approx(12345)

    def test_cycles_to_us_scale(self):
        nic = NicConfig(clock_hz=1e9)
        assert nic.cycles_to_us(1000) == pytest.approx(1.0)


class TestRoutingConfig:
    def test_default_bias_ordering(self):
        routing = RoutingConfig()
        assert 0 < routing.low_bias < routing.high_bias

    def test_rejects_zero_minimal_candidates(self):
        with pytest.raises(ValueError):
            RoutingConfig(minimal_candidates=0)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            RoutingConfig(credit_info_delay=-1)

    def test_rejects_negative_nonminimal_candidates(self):
        with pytest.raises(ValueError):
            RoutingConfig(nonminimal_candidates=-1)


class TestHostConfig:
    def test_defaults_valid(self):
        host = HostConfig()
        assert 0 <= host.os_noise_probability <= 1

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            HostConfig(os_noise_probability=1.5)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            HostConfig(intra_node_bytes_per_cycle=0)


class TestSimulationConfig:
    def test_with_topology_returns_new_object(self):
        config = SimulationConfig()
        other = config.with_topology(num_groups=2)
        assert other.topology.num_groups == 2
        assert config.topology.num_groups != 2 or config is not other

    def test_with_routing(self):
        config = SimulationConfig().with_routing(high_bias=99.0)
        assert config.routing.high_bias == 99.0

    def test_with_nic(self):
        config = SimulationConfig().with_nic(max_outstanding_packets=16)
        assert config.nic.max_outstanding_packets == 16

    def test_with_host(self):
        config = SimulationConfig().with_host(os_noise_probability=0.0)
        assert config.host.os_noise_probability == 0.0

    def test_with_seed(self):
        config = SimulationConfig().with_seed(7)
        assert config.seed == 7

    def test_presets(self):
        assert SimulationConfig.tiny().topology.num_groups == 2
        assert SimulationConfig.small().topology.num_groups == 4
