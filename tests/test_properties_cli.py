"""Tests for topology property summaries and the experiments CLI."""

from __future__ import annotations

import pytest

from repro.experiments.cli import EXPERIMENTS, build_parser, main
from repro.topology.dragonfly import LinkKind
from repro.topology.properties import (
    average_minimal_hops,
    diameter_hops,
    link_census,
    min_intergroup_connections,
    router_radix,
    summarize_topology,
)


class TestTopologyProperties:
    def test_link_census_matches_all_links(self, small_topology):
        census = link_census(small_topology)
        assert sum(census.values()) == len(small_topology.all_links())
        cfg = small_topology.config
        assert census[LinkKind.GREEN] == cfg.num_routers * (cfg.blades_per_chassis - 1)
        assert census[LinkKind.BLACK] == cfg.num_routers * (cfg.chassis_per_group - 1)

    def test_router_radix_bounds(self, small_topology):
        cfg = small_topology.config
        radix = router_radix(small_topology)
        expected_local = (cfg.blades_per_chassis - 1) + (cfg.chassis_per_group - 1)
        assert expected_local <= radix <= expected_local + cfg.global_links_per_router

    def test_diameter_at_most_five(self, small_topology, tiny_topology):
        assert 1 <= diameter_hops(small_topology) <= 5
        assert 1 <= diameter_hops(tiny_topology) <= 5

    def test_average_hops_below_diameter(self, small_topology):
        average = average_minimal_hops(small_topology)
        assert 0 < average <= diameter_hops(small_topology)

    def test_average_hops_invalid_stride(self, small_topology):
        with pytest.raises(ValueError):
            average_minimal_hops(small_topology, sample_stride=0)

    def test_min_intergroup_connections_positive(self, small_topology):
        assert min_intergroup_connections(small_topology) >= 1

    def test_summary_consistency(self, small_topology):
        summary = summarize_topology(small_topology)
        assert summary.num_routers == small_topology.num_routers
        assert summary.total_fabric_links == len(small_topology.all_links())
        assert summary.diameter_hops <= 5
        assert summary.min_intergroup_connections >= 1


class TestCli:
    def test_registry_covers_all_figures(self):
        assert {
            "figure3", "table1", "figure4", "figure5", "figure7",
            "figure8", "figure9", "figure10", "model_validation",
        } == set(EXPERIMENTS)

    def test_list_option(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "figure7" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_no_experiments_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_parser_defaults(self):
        args = build_parser().parse_args(["figure3"])
        assert args.scale == "smoke"
        assert args.seed is None

    def test_runs_single_experiment_and_writes_output(self, tmp_path, capsys):
        exit_code = main(["figure4", "--scale", "smoke", "--output", str(tmp_path), "--seed", "3"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert (tmp_path / "figure4.txt").exists()
