"""Flit-engine suite: selection, calendar-queue semantics, and equivalence.

Covers the ISSUE-7 and ISSUE-8 checklists: engine selection via
``REPRO_SIM_ENGINE`` (including the batch engine's NumPy gate and
fallback), unit tests of the calendar-queue scheduler's
ordering/cancel/resume semantics, a randomized three-engine equivalence
suite (seeded scenarios across routing modes and noise levels, asserting
identical event counts, counter snapshots and message timelines — the flit
analogue of ``tests/test_flow_solver.py``), byte-identical campaign
results across engines, the batch selector's vectorized wide-decision
path, and the ``queue_depth`` gauge on ``Simulator.run`` telemetry spans.
"""

from __future__ import annotations

import dataclasses
import importlib.util
import json
import logging
import random

import pytest

from repro.campaign import ensure_builtin_scenarios
from repro.campaign.executor import execute_spec
from repro.campaign.plan import RunSpec
from repro.config import SimulationConfig
from repro.network.network import Network
from repro.noise.background import BackgroundTraffic, NoiseLevel
from repro.routing.modes import RoutingMode
from repro.sim.calendar import CalendarSimulator
from repro.sim.engine import (
    SIM_ENGINE_ENV_VAR,
    SIM_ENGINE_KINDS,
    SimEngineError,
    SimulationError,
    Simulator,
    default_engine_kind,
    effective_engine_kind,
    make_simulator,
)
from repro.telemetry import capture, disable, enable
from repro.telemetry.log import reset_logging

HAS_NUMPY = importlib.util.find_spec("numpy") is not None

#: Engines whose construction is unconditional here (batch needs NumPy; it
#: falls back to calendar without it, which would fail engine_kind asserts).
ENGINES = SIM_ENGINE_KINDS if HAS_NUMPY else ("calendar", "reference")


# -- engine selection ---------------------------------------------------------------


class TestEngineSelection:
    def test_known_kinds(self):
        assert set(SIM_ENGINE_KINDS) == {"calendar", "reference", "batch"}

    def test_default_is_calendar(self, monkeypatch):
        monkeypatch.delenv(SIM_ENGINE_ENV_VAR, raising=False)
        assert default_engine_kind() == "calendar"
        assert make_simulator().engine_kind == "calendar"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(SIM_ENGINE_ENV_VAR, "reference")
        assert default_engine_kind() == "reference"
        assert type(make_simulator()) is Simulator

    def test_env_is_normalized(self, monkeypatch):
        monkeypatch.setenv(SIM_ENGINE_ENV_VAR, "  Calendar ")
        assert default_engine_kind() == "calendar"

    def test_env_invalid_raises(self, monkeypatch):
        monkeypatch.setenv(SIM_ENGINE_ENV_VAR, "warp-drive")
        with pytest.raises(SimEngineError, match="warp-drive"):
            default_engine_kind()

    def test_explicit_kind_beats_env(self, monkeypatch):
        monkeypatch.setenv(SIM_ENGINE_ENV_VAR, "calendar")
        assert make_simulator("reference").engine_kind == "reference"

    def test_unknown_explicit_kind_raises(self):
        with pytest.raises(SimEngineError):
            make_simulator("splay-tree")

    def test_network_uses_selected_engine(self, monkeypatch):
        monkeypatch.setenv(SIM_ENGINE_ENV_VAR, "reference")
        assert Network(SimulationConfig.tiny()).sim.engine_kind == "reference"
        monkeypatch.setenv(SIM_ENGINE_ENV_VAR, "calendar")
        assert isinstance(Network(SimulationConfig.tiny()).sim, CalendarSimulator)

    def test_batch_engine_selected(self, monkeypatch):
        pytest.importorskip("numpy")
        from repro.sim.batch import BatchSimulator

        monkeypatch.setenv(SIM_ENGINE_ENV_VAR, "batch")
        assert type(make_simulator()) is BatchSimulator
        network = Network(SimulationConfig.tiny())
        assert network.sim.engine_kind == "batch"
        # The batch network plane is wired in: fused links and selector.
        from repro.network.batch_core import BatchLink
        from repro.routing.ugal import BatchUgalSelector

        assert all(type(link) is BatchLink for link in network.fabric_links())
        assert type(network.selector) is BatchUgalSelector

    def test_explicit_sim_overrides_env(self, monkeypatch):
        """``Network(sim=...)`` wins over REPRO_SIM_ENGINE."""
        monkeypatch.setenv(SIM_ENGINE_ENV_VAR, "batch")
        network = Network(SimulationConfig.tiny(), sim=make_simulator("reference"))
        assert network.sim.engine_kind == "reference"
        from repro.network.batch_core import BatchLink

        assert not any(type(link) is BatchLink for link in network.fabric_links())

    def test_batch_without_numpy_falls_back(self, monkeypatch, capsys):
        """No NumPy: batch degrades to calendar with a structured warning.

        Same idiom as the REPRO_FLOW_SOLVER vectorized/reference fallback —
        the run proceeds on the equivalent engine, and the downgrade is
        visible in the structured log rather than silent.
        """
        monkeypatch.setattr("repro.sim.engine._numpy_available", lambda: False)
        reset_logging()
        try:
            sim = make_simulator("batch")
        finally:
            err = capsys.readouterr().err
            reset_logging()
        assert sim.engine_kind == "calendar"
        assert "sim.engine.fallback" in err
        assert "numpy-unavailable" in err
        assert effective_engine_kind("batch") == "calendar"

    def test_effective_engine_kind_resolves_env(self, monkeypatch):
        monkeypatch.setenv(SIM_ENGINE_ENV_VAR, "reference")
        assert effective_engine_kind() == "reference"
        if HAS_NUMPY:
            assert effective_engine_kind("batch") == "batch"


# -- calendar-queue scheduler semantics ---------------------------------------------


class TestCalendarSimulator:
    def test_time_order_across_buckets(self):
        sim = CalendarSimulator()
        hits = []
        sim.schedule_call(10, hits.append, 10)
        sim.schedule_call(5, hits.append, 5)
        sim.schedule_call(7, hits.append, 7)
        sim.run()
        assert hits == [5, 7, 10]
        assert sim.now == 10

    def test_fifo_within_a_bucket(self):
        sim = CalendarSimulator()
        hits = []
        for i in range(6):
            sim.schedule_call(4, hits.append, i)
        sim.run()
        assert hits == list(range(6))

    def test_zero_delay_from_callback_runs_same_pass(self):
        """A callback scheduling delay-0 work appends to the live bucket."""
        sim = CalendarSimulator()
        hits = []

        def first():
            hits.append("first")
            sim.schedule_call(0, hits.append, "chained")

        sim.schedule_call(3, first)
        sim.schedule_call(3, hits.append, "second")
        sim.run()
        assert hits == ["first", "second", "chained"]
        assert sim.now == 3

    def test_matches_reference_on_this_contract(self):
        """The reference engine executes the exact same order."""

        def drive(sim):
            hits = []

            def first():
                hits.append("first")
                sim.schedule_call(0, hits.append, "chained")

            sim.schedule_call(3, first)
            sim.schedule_call(3, hits.append, "second")
            sim.run()
            return hits

        assert drive(CalendarSimulator()) == drive(Simulator())

    def test_negative_delay_raises(self):
        sim = CalendarSimulator()
        with pytest.raises(SimulationError):
            sim.schedule_call(-1, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_float_delay_rounds_up(self):
        sim = CalendarSimulator()
        times = []
        sim.schedule_call(0.25, lambda: times.append(sim.now))
        sim.run()
        assert times == [1]

    def test_until_clamps_clock_and_keeps_future_events(self):
        sim = CalendarSimulator()
        hits = []
        sim.schedule_call(100, hits.append, "late")
        sim.run(until=40)
        assert sim.now == 40 and hits == []
        sim.run()
        assert hits == ["late"] and sim.now == 100

    def test_max_events_stops_mid_bucket_and_resumes(self):
        sim = CalendarSimulator()
        hits = []
        for i in range(5):
            sim.schedule_call(8, hits.append, i)
        sim.run(max_events=2)
        assert hits == [0, 1] and sim.now == 8
        sim.run(max_events=2)
        assert hits == [0, 1, 2, 3]
        sim.run()
        assert hits == [0, 1, 2, 3, 4]
        assert sim.pending_events == 0

    def test_step_interoperates_with_run(self):
        sim = CalendarSimulator()
        hits = []
        for i in range(4):
            sim.schedule_call(i + 1, hits.append, i)
        assert sim.step() and hits == [0]
        sim.run(until=2)
        assert hits == [0, 1]
        assert sim.step() and sim.step()
        assert not sim.step()
        assert hits == [0, 1, 2, 3]

    def test_cancel_skips_event(self):
        sim = CalendarSimulator()
        hits = []
        keep = sim.schedule(5, hits.append, "keep")
        drop = sim.schedule(5, hits.append, "drop")
        assert drop.time == 5 and not drop.cancelled
        drop.cancel()
        assert drop.cancelled and not keep.cancelled
        sim.run()
        assert hits == ["keep"]

    def test_cancel_is_idempotent(self):
        sim = CalendarSimulator()
        event = sim.schedule(5, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.live_events == 0

    def test_cancel_after_execution_is_noop(self):
        sim = CalendarSimulator()
        event = sim.schedule(5, lambda: None)
        sim.run()
        event.cancel()  # must not corrupt the live-event counter
        assert sim.live_events == 0 and sim.empty()

    def test_stop_from_callback(self):
        sim = CalendarSimulator()
        hits = []
        sim.schedule_call(1, lambda: (hits.append("a"), sim.stop()))
        sim.schedule_call(1, hits.append, "b")
        sim.run()
        assert hits == ["a"]
        sim.run()
        assert hits == ["a", "b"]

    def test_reset_clears_and_inerts_stale_handles(self):
        sim = CalendarSimulator()
        hits = []
        stale = sim.schedule(5, hits.append, "old")
        sim.reset()
        assert sim.now == 0 and sim.empty() and sim.pending_events == 0
        sim.schedule_call(1, hits.append, "new")
        stale.cancel()  # handle from the previous epoch must be inert
        assert sim.live_events == 1
        sim.run()
        assert hits == ["new"]

    def test_accounting(self):
        sim = CalendarSimulator()
        assert sim.empty()
        sim.schedule_call(1, lambda: None)
        event = sim.schedule(1, lambda: None)
        assert sim.pending_events == 2 and sim.live_events == 2
        event.cancel()
        assert sim.live_events == 1 and not sim.empty()
        sim.run()
        assert sim.events_executed == 1 and sim.empty()

    def test_not_reentrant(self):
        sim = CalendarSimulator()
        sim.schedule_call(1, lambda: sim.run())
        with pytest.raises(SimulationError, match="reentrant"):
            sim.run()

    @pytest.mark.parametrize("seed", [3, 17, 4242])
    def test_fuzzed_order_matches_reference(self, seed):
        """Random schedules (duplicate times, chains) execute identically."""

        def drive(sim):
            rng = random.Random(seed)
            order = []

            def hit(tag, depth):
                order.append((sim.now, tag))
                if depth > 0 and rng.random() < 0.4:
                    sim.schedule_call(rng.choice([0, 0, 1, 3]), hit, tag * 31 + 7, depth - 1)

            for tag in range(120):
                sim.schedule_call(rng.randrange(12), hit, tag, 3)
            sim.run()
            return order, sim.events_executed, sim.now

        assert drive(CalendarSimulator()) == drive(Simulator())


# -- randomized reference-vs-calendar equivalence -----------------------------------


MODES = (
    RoutingMode.ADAPTIVE_0,
    RoutingMode.ADAPTIVE_1,
    RoutingMode.ADAPTIVE_3,
    RoutingMode.MIN_HASH,
    RoutingMode.NMIN_HASH,
)

NOISE = (NoiseLevel.NONE, NoiseLevel.NONE, NoiseLevel.LIGHT, NoiseLevel.MODERATE)


def _run_scenario(engine: str, seed: int) -> dict:
    """One seeded traffic scenario under the given engine; returns observables.

    The scenario generator draws every choice from ``random.Random(seed)``
    *before* touching the network, so both engines replay the identical
    script; any divergence in the returned dict is the engine's fault.
    """
    rng = random.Random(seed)
    config = SimulationConfig.small(seed=1000 + seed)
    network = Network(config, sim=make_simulator(engine))
    num_nodes = network.num_nodes
    noise_level = rng.choice(NOISE)
    sends = []
    clock = 0
    for _ in range(rng.randrange(6, 14)):
        clock += rng.randrange(0, 3000)
        src = rng.randrange(num_nodes)
        dst = rng.randrange(num_nodes - 1)
        if dst >= src:
            dst += 1
        sends.append(
            (
                clock,
                src,
                dst,
                rng.choice((256, 1024, 4096, 16384)),
                rng.choice(MODES),
            )
        )
    noise = None
    if noise_level is not NoiseLevel.NONE:
        noise = BackgroundTraffic.for_level(
            network, [0, num_nodes - 1], noise_level, name=f"eq-{seed}"
        )
        if noise is not None:
            noise.start()
    messages = []
    for at, src, dst, size, mode in sends:
        network.run(until=at)
        messages.append(network.send(src, dst, size, routing_mode=mode))
    if noise is not None:
        # Let the noise overlap the tail of the traffic, then drain.
        network.run(until=network.sim.now + 5_000)
        noise.stop()
    network.run_until_idle()
    selector = network.selector
    return {
        "engine_kind": network.sim.engine_kind,
        "events": network.sim.events_executed,
        "now": network.sim.now,
        "timelines": [
            (m.submit_time, m.first_injection_time, m.delivered_time, m.acked_time)
            for m in messages
        ],
        "routing": [
            (m.minimal_packets, m.nonminimal_packets) for m in messages
        ],
        "decisions": (
            selector.decisions,
            selector.minimal_decisions,
            selector.nonminimal_decisions,
        ),
        "counters": [
            dataclasses.asdict(nic.counters.snapshot()) for nic in network.nics
        ],
        "flits_forwarded": sum(r.flits_traversed for r in network.routers),
    }


class TestEngineEquivalence:
    """Event-for-event parity between all engines on real traffic.

    24 seeded scenarios spanning routing modes, message sizes, send
    schedules and noise levels; everything observable must match exactly,
    pairwise across every engine.  The batch engine is held to *more* than
    its contract (observable-state equality): its fused plane is a
    statement-for-statement transcription, so even the event counts match.
    """

    @pytest.mark.parametrize("seed", range(24))
    def test_equivalent_scenario(self, seed):
        results = {}
        for engine in ENGINES:
            result = _run_scenario(engine, seed)
            assert result.pop("engine_kind") == engine
            results[engine] = result
        baseline = results["reference"]
        for engine, result in results.items():
            assert result == baseline, f"{engine} diverged from reference"


class TestRunSpecStoreEquivalence:
    """A campaign cell produces byte-identical results under every engine."""

    SPEC = {
        "scenario": "pingpong-placement",
        "params": {"placement": "inter-nodes", "message_kib": 4, "noise": "none"},
    }

    def _payload(self, monkeypatch, engine: str) -> dict:
        ensure_builtin_scenarios()
        monkeypatch.setenv(SIM_ENGINE_ENV_VAR, engine)
        spec = RunSpec.make(self.SPEC["scenario"], self.SPEC["params"])
        payload, _report, _elapsed = execute_spec(spec)
        return payload

    def test_identical_store_payloads(self, monkeypatch):
        # Deliberately SIM_ENGINE_KINDS, not ENGINES: without NumPy the
        # batch run falls back to calendar, whose bytes must still match.
        blobs = {
            engine: json.dumps(
                self._payload(monkeypatch, engine), sort_keys=True
            ).encode()
            for engine in SIM_ENGINE_KINDS
        }
        assert len(set(blobs.values())) == 1, (
            "store payloads diverged across engines: "
            + ", ".join(sorted(blobs))
        )


class TestVectorizedWideDecisions:
    """Wide candidate sets route through the NumPy scoring entry point."""

    def _run_wide(self, engine: str) -> dict:
        config = SimulationConfig.small(seed=77).with_routing(
            minimal_candidates=4, nonminimal_candidates=4
        )
        network = Network(config, sim=make_simulator(engine))
        rng = random.Random(909)
        messages = []
        clock = 0
        for _ in range(8):
            clock += rng.randrange(0, 2000)
            src = rng.randrange(network.num_nodes)
            dst = (src + rng.randrange(1, network.num_nodes)) % network.num_nodes
            network.run(until=clock)
            messages.append(
                network.send(src, dst, 4096, routing_mode=RoutingMode.ADAPTIVE_1)
            )
        network.run_until_idle()
        selector = network.selector
        return {
            "events": network.sim.events_executed,
            "timelines": [
                (m.submit_time, m.delivered_time, m.acked_time) for m in messages
            ],
            "routing": [
                (m.minimal_packets, m.nonminimal_packets) for m in messages
            ],
            "decisions": (selector.decisions, selector.minimal_decisions),
        }

    def test_wide_decisions_are_vectorized_and_equivalent(self, monkeypatch):
        pytest.importorskip("numpy")
        from repro.routing.ugal import VECTORIZE_MIN_CANDIDATES, BatchUgalSelector

        assert 4 + 4 >= VECTORIZE_MIN_CANDIDATES
        calls = {"n": 0}
        original = BatchUgalSelector._select_vectorized

        def spy(self, *args, **kwargs):
            calls["n"] += 1
            return original(self, *args, **kwargs)

        monkeypatch.setattr(BatchUgalSelector, "_select_vectorized", spy)
        batch = self._run_wide("batch")
        assert calls["n"] > 0, "batch selector never took the vectorized path"
        assert batch == self._run_wide("reference")


# -- telemetry: queue_depth on sim.run spans ----------------------------------------


class TestSimRunTelemetry:
    @pytest.fixture(autouse=True)
    def _telemetry_off(self):
        disable()
        yield
        disable()

    @pytest.mark.parametrize("engine", SIM_ENGINE_KINDS)
    def test_run_span_reports_live_queue_depth(self, engine):
        network = Network(SimulationConfig.tiny(), sim=make_simulator(engine))
        message = network.send(0, network.num_nodes - 1, 1024)
        enable()
        with capture() as cap:
            network.run_until_idle()
        snapshot = cap.snapshot()
        spans = [ev for ev in snapshot["events"] if ev["name"] == "sim.run"]
        assert spans, "network.run must emit a sim.run span"
        args = spans[-1]["args"]
        assert args["queue_depth"] == network.sim.live_events
        assert args["events"] > 0
        assert message.acked
