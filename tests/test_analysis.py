"""Tests for the statistics and noise-estimation helpers."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.noise_estimation import (
    NoiseEstimate,
    counters_per_second,
    estimate_noise_from_counters,
    noise_estimate,
    relative_slowdown,
)
from repro.analysis.reporting import (
    BOXPLOT_COLUMNS,
    Table,
    boxplot_row,
    format_table,
    normalize_series,
)
from repro.analysis.stats import (
    iqr,
    median,
    median_confidence_interval,
    percentile,
    quartile_coefficient_of_dispersion,
    quartiles,
    summarize,
)
from repro.config import NicConfig
from repro.network.counters import CounterSnapshot

NIC = NicConfig()


class TestStats:
    def test_median_odd_even(self):
        assert median([3, 1, 2]) == 2
        assert median([1, 2, 3, 4]) == 2.5

    def test_percentile_bounds(self):
        data = list(range(101))
        assert percentile(data, 0) == 0
        assert percentile(data, 100) == 100
        assert percentile(data, 50) == 50

    def test_percentile_invalid_q(self):
        with pytest.raises(ValueError):
            percentile([1, 2], 150)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            median([])

    def test_quartiles_match_numpy(self):
        rng = np.random.default_rng(0)
        data = rng.random(500).tolist()
        q1, med, q3 = quartiles(data)
        assert q1 == pytest.approx(np.percentile(data, 25))
        assert med == pytest.approx(np.percentile(data, 50))
        assert q3 == pytest.approx(np.percentile(data, 75))

    def test_iqr(self):
        assert iqr([1, 2, 3, 4, 5]) == pytest.approx(2.0)

    def test_qcd_definition(self):
        data = [10, 20, 30, 40]
        q1, _, q3 = quartiles(data)
        assert quartile_coefficient_of_dispersion(data) == pytest.approx(
            (q3 - q1) / (q3 + q1)
        )

    def test_qcd_zero_for_constant_data(self):
        assert quartile_coefficient_of_dispersion([5, 5, 5]) == 0.0

    def test_qcd_zero_denominator(self):
        assert quartile_coefficient_of_dispersion([0, 0, 0]) == 0.0

    def test_median_ci_contains_median(self):
        data = [1, 2, 3, 4, 5, 6, 7, 8, 9]
        low, high = median_confidence_interval(data)
        assert low <= median(data) <= high

    def test_median_ci_width_shrinks_with_n(self):
        narrow = median_confidence_interval(list(range(1000)))
        wide = median_confidence_interval(list(range(10)))
        assert (narrow[1] - narrow[0]) / 1000 < (wide[1] - wide[0]) / 10

    def test_single_value(self):
        stats = summarize([42.0])
        assert stats.median == 42.0
        assert stats.qcd == 0.0
        assert stats.outliers == ()

    def test_summarize_outliers(self):
        data = [10.0] * 20 + [10_000.0]
        stats = summarize(data)
        assert 10_000.0 in stats.outliers
        assert stats.whisker_high <= 10.0
        assert stats.maximum == 10_000.0

    def test_summarize_mean_vs_median_with_outliers(self):
        """Outliers pull the mean but not the median (the Figure 3 effect)."""
        data = [10.0] * 50 + [10_000.0] * 3
        stats = summarize(data)
        assert stats.median == 10.0
        assert stats.mean > 100.0

    def test_notch_width_relative(self):
        stats = summarize([100.0] * 100)
        assert stats.notch_width_relative() == pytest.approx(0.0)

    @given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_property_summary_invariants(self, data):
        stats = summarize(data)
        assert stats.minimum <= stats.q1 <= stats.median <= stats.q3 <= stats.maximum
        assert 0.0 <= stats.qcd <= 1.0
        assert stats.count == len(data)
        assert stats.whisker_low >= stats.minimum
        assert stats.whisker_high <= stats.maximum

    @given(
        st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=4, max_size=100),
        st.floats(min_value=1.5, max_value=5.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_qcd_scale_invariant(self, data, factor):
        """QCD is invariant under multiplicative scaling (it is relative)."""
        base = quartile_coefficient_of_dispersion(data)
        scaled = quartile_coefficient_of_dispersion([x * factor for x in data])
        assert scaled == pytest.approx(base, rel=1e-6, abs=1e-9)


class TestNoiseEstimation:
    def _snapshot(self, latency, stalls=0, flits=100, packets=20):
        return CounterSnapshot(
            request_flits=flits,
            request_flits_stalled_cycles=stalls,
            request_packets=packets,
            request_packets_cum_latency=latency * packets,
            responses_received=packets,
        )

    def test_counters_per_second_normalization(self):
        snap = self._snapshot(latency=100.0, stalls=500, flits=1000)
        one_second = int(NIC.clock_hz)
        rates = counters_per_second(snap, one_second, NIC)
        assert rates["request_flits_per_s"] == pytest.approx(1000.0)
        assert rates["stalled_cycles_per_s"] == pytest.approx(500.0)

    def test_counters_per_second_interval_validation(self):
        with pytest.raises(ValueError):
            counters_per_second(self._snapshot(1.0), 0, NIC)

    def test_estimate_noise_from_counters(self):
        snapshots = [self._snapshot(latency=l) for l in (1000.0, 1100.0, 2000.0, 900.0)]
        qcd = estimate_noise_from_counters(4096, snapshots, NIC)
        assert qcd > 0.0

    def test_estimate_noise_requires_snapshots(self):
        with pytest.raises(ValueError):
            estimate_noise_from_counters(4096, [], NIC)

    def test_noise_estimate_overestimation_factor(self):
        times = [100.0, 200.0, 500.0, 120.0]
        snapshots = [self._snapshot(latency=1000.0) for _ in range(4)]
        estimate = noise_estimate(times, 4096, snapshots, NIC)
        assert isinstance(estimate, NoiseEstimate)
        assert estimate.network_qcd == 0.0
        assert estimate.overestimation_factor == float("inf")

    def test_relative_slowdown(self):
        assert relative_slowdown([2.0, 4.0], 2.0) == [1.0, 2.0]
        with pytest.raises(ValueError):
            relative_slowdown([1.0], 0.0)


class TestReporting:
    def test_table_rendering(self):
        table = Table("demo", ["a", "b"])
        table.add_row(1, 2.5)
        text = table.render()
        assert "demo" in text and "2.500" in text

    def test_table_row_length_checked(self):
        table = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_format_table_alignment(self):
        text = format_table("t", ["col"], [["value"], ["x"]])
        lines = text.splitlines()
        # title + separator + header + two rows
        assert len(lines) == 5
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)

    def test_normalize_series(self):
        series = {"Default": [10.0, 20.0, 30.0], "Other": [5.0, 40.0]}
        normalized = normalize_series(series, "Default")
        assert normalized["Default"][1] == pytest.approx(1.0)
        assert normalized["Other"][0] == pytest.approx(0.25)

    def test_normalize_series_missing_baseline(self):
        with pytest.raises(KeyError):
            normalize_series({"a": [1.0]}, "Default")

    def test_boxplot_row_matches_columns(self):
        row = boxplot_row("case", [1.0, 2.0, 3.0])
        assert len(row) == len(BOXPLOT_COLUMNS)
