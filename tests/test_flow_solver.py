"""Fair-share solver engines: edge cases and reference-vs-vectorized parity.

The vectorized engine (`repro/model/flow/vectorized.py`) must compute the
same max-min allocation as the pure-Python reference solver — the unique
water-filling fixed point — within an EPS-scaled tolerance, under both
from-scratch and incremental (add/remove churn) solving.
"""

from __future__ import annotations

import random

import pytest

from repro.config import SimulationConfig
from repro.model.flow.engine import (
    ENGINE_KINDS,
    ReferenceFairShareEngine,
    SolverEngineError,
    default_engine_kind,
    make_engine,
)
from repro.model.flow.network import FlowNetwork
from repro.model.flow.solver import EPS, FairShareSolver, FlowState

np = pytest.importorskip("numpy")

#: Relative tolerance for cross-engine rate comparisons.
RATE_RTOL = 1e-6


def _assert_rates_match(reference_flows, engine, engine_flows):
    for ref, mirrored in zip(reference_flows, engine_flows):
        got = engine.rate_of(mirrored)
        assert got == pytest.approx(ref.rate, rel=RATE_RTOL, abs=1e-9), (
            f"flow {ref.flow_id}: reference {ref.rate} vs vectorized {got}"
        )


def _random_instance(rng, nlinks=None, nflows=None):
    """A random heterogeneous-capacity instance, as (capacities, flow specs)."""
    nlinks = nlinks or rng.randint(2, 24)
    capacities = {
        f"l{i}": rng.choice([1e-3, 0.333, 1.0, 4.0, 1e6]) for i in range(nlinks)
    }
    specs = []
    for fid in range(nflows or rng.randint(1, 80)):
        links = tuple(
            rng.sample(sorted(capacities), rng.randint(1, min(6, nlinks)))
        )
        cap = rng.choice([float("inf"), 0.25, 0.5, 2.0])
        specs.append((fid, links, cap))
    return capacities, specs


class TestEngineSelection:
    def test_known_kinds(self):
        assert ENGINE_KINDS == ("reference", "vectorized")

    def test_make_engine_kinds(self):
        ref = make_engine("reference", lambda key: 1.0)
        vec = make_engine("vectorized", lambda key: 1.0)
        assert ref.kind == "reference"
        assert vec.kind == "vectorized"

    def test_unknown_kind_raises(self):
        with pytest.raises(SolverEngineError, match="unknown flow-solver engine"):
            make_engine("quantum", lambda key: 1.0)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLOW_SOLVER", "reference")
        assert default_engine_kind() == "reference"
        network = FlowNetwork(SimulationConfig.tiny())
        assert network.solver_kind == "reference"

    def test_env_override_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLOW_SOLVER", "nope")
        with pytest.raises(SolverEngineError, match="REPRO_FLOW_SOLVER"):
            default_engine_kind()

    def test_default_is_vectorized_with_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_FLOW_SOLVER", raising=False)
        assert default_engine_kind() == "vectorized"

    def test_network_solver_arg(self):
        for kind in ENGINE_KINDS:
            network = FlowNetwork(SimulationConfig.tiny(), solver=kind)
            assert network.solver_kind == kind


class TestSolverEdgeCases:
    """The satellite edge cases, asserted on both implementations."""

    def _both(self, capacities, specs):
        """Solve the same instance on both engines; return (ref_flows, vec, vec_flows)."""
        reference = FairShareSolver(capacities.__getitem__)
        ref_flows = [FlowState(f, links, 100.0, cap=cap) for f, links, cap in specs]
        reference.solve(ref_flows)
        engine = make_engine("vectorized", capacities.__getitem__)
        vec_flows = [FlowState(f, links, 100.0, cap=cap) for f, links, cap in specs]
        for flow in vec_flows:
            engine.add_flow(flow)
        engine.solve()
        return ref_flows, engine, vec_flows

    def test_cap_hits_exactly_at_link_saturation(self):
        """A flow whose cap equals its fair share at the saturating step."""
        capacities = {"a": 1.0}
        specs = [(0, ("a",), 0.5), (1, ("a",), float("inf"))]
        ref_flows, engine, vec_flows = self._both(capacities, specs)
        assert ref_flows[0].rate == pytest.approx(0.5)
        assert ref_flows[1].rate == pytest.approx(0.5)
        _assert_rates_match(ref_flows, engine, vec_flows)

    def test_heterogeneous_capacities_do_not_misfreeze(self):
        """Relative saturation tolerance: a huge-capacity link must still
        saturate cleanly (absolute EPS never got within 1e-9 of empty)."""
        capacities = {"huge": 1e6, "tiny": 1e-3}
        specs = [
            (0, ("huge",), float("inf")),
            (1, ("huge", "tiny"), float("inf")),
            (2, ("tiny",), float("inf")),
        ]
        ref_flows, engine, vec_flows = self._both(capacities, specs)
        # max-min: the tiny link splits between flows 1 and 2; flow 0
        # absorbs the rest of the huge link.
        assert ref_flows[1].rate == pytest.approx(5e-4)
        assert ref_flows[2].rate == pytest.approx(5e-4)
        assert ref_flows[0].rate == pytest.approx(1e6 - 5e-4)
        _assert_rates_match(ref_flows, engine, vec_flows)

    def test_zero_rate_flows_excluded_from_completion_horizon(self):
        solver = FairShareSolver(lambda key: 1.0)
        moving = FlowState(0, ("a",), 10.0)
        stuck = FlowState(1, ("b",), 10.0)
        solver.solve([moving, stuck])
        stuck.rate = 0.0  # e.g. a flow whose links were fully saturated
        assert solver.completion_horizon([moving, stuck]) == pytest.approx(10.0)
        assert solver.completion_horizon([stuck]) == float("inf")

        engine = make_engine("vectorized", lambda key: 1.0)
        m2 = FlowState(0, ("a",), 10.0)
        engine.add_flow(m2)
        assert engine.completion_horizon() == float("inf")  # not yet solved
        engine.solve()
        assert engine.completion_horizon() == pytest.approx(10.0)

    def test_single_flow_fast_path(self):
        engine = make_engine("vectorized", {"a": 2.0, "b": 0.5}.__getitem__)
        flow = FlowState(0, ("a", "b"), 10.0, cap=5.0)
        engine.add_flow(flow)
        engine.solve()
        assert engine.rate_of(flow) == pytest.approx(0.5)
        # The fast path must short-circuit: exactly one fill "round".
        assert engine.stats["rounds"] == 1
        capped = FlowState(1, ("c",), 10.0, cap=0.25)
        engine2 = make_engine("vectorized", {"c": 2.0}.__getitem__)
        engine2.add_flow(capped)
        engine2.solve()
        assert engine2.rate_of(capped) == pytest.approx(0.25)

    def test_single_flow_duplicate_link_occurrence(self):
        """A flow crossing the same link twice halves its share, like the
        reference's per-occurrence counting."""
        capacities = {"a": 1.0}
        reference = FairShareSolver(capacities.__getitem__)
        ref_flow = FlowState(0, ("a", "a"), 10.0)
        reference.solve([ref_flow])
        engine = make_engine("vectorized", capacities.__getitem__)
        vec_flow = FlowState(0, ("a", "a"), 10.0)
        engine.add_flow(vec_flow)
        engine.solve()
        assert ref_flow.rate == pytest.approx(0.5)
        assert engine.rate_of(vec_flow) == pytest.approx(0.5)

    def test_drained_syncs_attributes(self):
        engine = make_engine("vectorized", lambda key: 1.0)
        flow = FlowState(0, ("a",), 5.0)
        engine.add_flow(flow)
        engine.solve()
        engine.advance(5.0)
        drained = engine.drained(1e-6)
        assert drained == [flow]
        assert flow.remaining == pytest.approx(0.0, abs=1e-9)
        assert flow.rate == pytest.approx(1.0)

    def test_remove_flow_releases_bandwidth(self):
        engine = make_engine("vectorized", lambda key: 1.0)
        first = FlowState(0, ("a",), 10.0)
        second = FlowState(1, ("a",), 10.0)
        engine.add_flow(first)
        engine.add_flow(second)
        engine.solve()
        assert engine.rate_of(first) == pytest.approx(0.5)
        engine.remove_flow(second)
        engine.solve()
        assert engine.rate_of(first) == pytest.approx(1.0)
        assert len(engine) == 1

    def test_linkless_flow_gets_cap_rate(self):
        """A flow crossing no links is bounded only by its cap — on both
        engines (regression: it joined no component, so it never solved)."""
        reference = ReferenceFairShareEngine(lambda key: 1.0)
        ref_flow = FlowState(0, (), 10.0, cap=2.0)
        reference.add_flow(ref_flow)
        reference.solve()
        assert ref_flow.rate == pytest.approx(2.0)

        engine = make_engine("vectorized", lambda key: 1.0)
        vec_flow = FlowState(0, (), 10.0, cap=2.0)
        engine.add_flow(vec_flow)
        engine.solve()
        assert engine.rate_of(vec_flow) == pytest.approx(2.0)
        assert engine.completion_horizon() == pytest.approx(5.0)

    def test_solve_without_changes_is_skipped(self):
        engine = make_engine("vectorized", lambda key: 1.0)
        engine.add_flow(FlowState(0, ("a",), 10.0))
        engine.solve()
        before = dict(engine.stats)
        engine.solve()
        assert engine.stats["skipped"] == before["skipped"] + 1
        assert engine.stats["rounds"] == before["rounds"]


class TestReferenceVectorizedEquivalence:
    """Randomized property test: both engines find the same fixed point."""

    @pytest.mark.parametrize("seed", [7, 21, 1999, 424242])
    def test_from_scratch_equivalence(self, seed):
        rng = random.Random(seed)
        for _ in range(15):
            capacities, specs = _random_instance(rng)
            reference = FairShareSolver(capacities.__getitem__)
            ref_flows = [FlowState(f, links, 100.0, cap=cap) for f, links, cap in specs]
            reference.solve(ref_flows)
            engine = make_engine("vectorized", capacities.__getitem__)
            vec_flows = [FlowState(f, links, 100.0, cap=cap) for f, links, cap in specs]
            for flow in vec_flows:
                engine.add_flow(flow)
            engine.solve()
            _assert_rates_match(ref_flows, engine, vec_flows)

    @pytest.mark.parametrize("seed", [13, 99])
    def test_incremental_equivalence_under_churn(self, seed):
        """Incremental component re-solves match a fresh full reference
        solve after every membership change."""
        rng = random.Random(seed)
        capacities = {f"l{i}": rng.choice([0.5, 1.0, 3.0]) for i in range(30)}
        engine = make_engine("vectorized", capacities.__getitem__)
        reference = FairShareSolver(capacities.__getitem__)
        live = {}
        next_id = 0
        for _ in range(150):
            if live and rng.random() < 0.4:
                victim = live.pop(rng.choice(sorted(live)))
                engine.remove_flow(victim)
            else:
                flow = FlowState(
                    next_id,
                    tuple(rng.sample(sorted(capacities), rng.randint(1, 5))),
                    50.0,
                )
                engine.add_flow(flow)
                live[next_id] = flow
                next_id += 1
            engine.solve()
            mirror = [FlowState(f.flow_id, f.links, 50.0, cap=f.cap) for f in live.values()]
            reference.solve(mirror)
            for ref in mirror:
                got = engine.rate_of(live[ref.flow_id])
                assert got == pytest.approx(ref.rate, rel=RATE_RTOL, abs=1e-9)
        # Churn over clustered links must actually exercise the
        # incremental path, not just repeated full solves.
        assert engine.stats["incremental"] > 0

    def test_disjoint_components_solved_independently(self):
        """Flows in untouched components keep their rates bit-identical."""
        capacities = {"a": 1.0, "b": 1.0}
        engine = make_engine("vectorized", capacities.__getitem__)
        left = [FlowState(i, ("a",), 10.0) for i in range(3)]
        right = [FlowState(10 + i, ("b",), 10.0) for i in range(2)]
        for flow in left + right:
            engine.add_flow(flow)
        engine.solve()
        left_rates = [engine.rate_of(f) for f in left]
        assert left_rates == pytest.approx([1 / 3] * 3)
        # Perturb only the "b" component.
        extra = FlowState(99, ("b",), 10.0)
        engine.add_flow(extra)
        engine.solve()
        assert engine.stats["incremental"] >= 1
        assert [engine.rate_of(f) for f in left] == left_rates
        assert [engine.rate_of(f) for f in right] == pytest.approx([1 / 3, 1 / 3])

    def test_reference_engine_matches_bare_solver(self):
        capacities = {"a": 1.0, "b": 2.0}
        engine = ReferenceFairShareEngine(capacities.__getitem__)
        flows = [FlowState(0, ("a", "b"), 10.0), FlowState(1, ("b",), 10.0)]
        for flow in flows:
            engine.add_flow(flow)
        engine.solve()
        assert flows[0].rate == pytest.approx(1.0)
        assert flows[1].rate == pytest.approx(1.0)
        assert engine.completion_horizon() == pytest.approx(10.0)
        engine.advance(10.0)
        assert set(engine.drained(1e-6)) == set(flows)


class TestNetworkEngineParity:
    """The same simulation must produce identical timelines on both engines."""

    def _run(self, kind: str):
        network = FlowNetwork(SimulationConfig.tiny(seed=3), solver=kind)
        events = []
        for src in (0, 1, 2, 3):
            network.send(
                src,
                network.num_nodes - 1 - src,
                16384,
                on_acked=lambda m: events.append((m.src_node, network.sim.now)),
            )
        network.run_until_idle()
        stall = network.nic(0).counters.stall_ratio
        latency = network.nic(0).counters.avg_packet_latency
        return events, network.sim.now, stall, latency

    def test_identical_timeline_across_engines(self):
        ref = self._run("reference")
        vec = self._run("vectorized")
        assert ref[0] == vec[0]
        assert ref[1] == vec[1]
        assert ref[2] == pytest.approx(vec[2], rel=1e-9)
        assert ref[3] == pytest.approx(vec[3], rel=1e-9)

    def test_same_cycle_submissions_coalesce_to_one_solve(self):
        network = FlowNetwork(SimulationConfig.tiny(), solver="vectorized")
        for src in range(4):
            network.send(src, network.num_nodes - 1 - src, 8192)
        # Drain only cycle 0: all four submissions resolve in ONE solve.
        network.sim.run(until=0)
        assert network.solver_stats["solves"] == 1

    def test_completions_and_submissions_coalesce(self):
        """A completion plus a triggered same-cycle send = one more solve."""
        network = FlowNetwork(SimulationConfig.tiny(), solver="vectorized")
        sent = []

        def chain(message):
            if len(sent) < 3:
                sent.append(message)
                network.send(0, network.num_nodes - 1, 4096, on_acked=chain)

        network.send(0, network.num_nodes - 1, 4096, on_acked=chain)
        network.run_until_idle()
        # Each exchange contributes at most two solving cycles (submission
        # cycle + drain cycle); the historic behaviour solved once per
        # completion *and* once per submission *and* once per drained flow.
        assert network.solver_stats["solves"] <= 2 * (len(sent) + 1) + 1


class _CheckingEngine:
    """Engine proxy: after every solve, re-derive all rates from scratch.

    Wraps the network's real engine; each ``solve()`` delegates, then
    mirrors the live flow set into fresh :class:`FlowState` instances,
    solves them with the reference :class:`FairShareSolver`, and demands
    the engine's incremental answer match the from-scratch fixed point.
    """

    def __init__(self, inner, capacity_of):
        self._inner = inner
        self._reference = FairShareSolver(capacity_of)
        self._live = {}
        self.checks = 0

    def add_flow(self, flow):
        self._inner.add_flow(flow)
        self._live[flow.flow_id] = flow

    def remove_flow(self, flow):
        self._inner.remove_flow(flow)
        del self._live[flow.flow_id]

    def solve(self):
        self._inner.solve()
        mirror = [
            FlowState(f.flow_id, f.links, 1.0, cap=f.cap)
            for f in self._live.values()
        ]
        self._reference.solve(mirror)
        for ref in mirror:
            got = self._inner.rate_of(self._live[ref.flow_id])
            assert got == pytest.approx(ref.rate, rel=RATE_RTOL, abs=1e-9), (
                f"flow {ref.flow_id} after churn: "
                f"reference {ref.rate} vs engine {got}"
            )
        self.checks += 1

    def __len__(self):
        return len(self._inner)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestSchedulerDrivenChurn:
    """Multi-tenant replays churn the flow set as jobs start and stop.

    The cluster scheduler's arrival/departure pattern (bursts of flows
    appearing when a job is admitted, draining when it completes, with
    admissions triggered *inside* completion handling) is the adversarial
    shape for the incremental solver: whole connected components appear
    and vanish in the same cycle.  Every re-solve along a real replay must
    still land on the from-scratch max-min fixed point.
    """

    def _replay_checked(self, kind):
        from repro.cluster import ClusterScheduler, JobTrace
        from repro.config import TopologyConfig

        config = SimulationConfig(
            topology=TopologyConfig(
                num_groups=3,
                chassis_per_group=2,
                blades_per_chassis=2,
                nodes_per_router=2,
            ),
            seed=5,
            backend="flow",
        )
        network = FlowNetwork(config, solver=kind)
        checker = _CheckingEngine(network._engine, network._capacity_of)
        network._engine = checker
        trace = JobTrace.synthetic(5, 12, load="heavy", max_nodes=8)
        scheduler = ClusterScheduler(network, trace)
        result = scheduler.replay()
        return checker, scheduler, result

    @pytest.mark.parametrize("kind", ENGINE_KINDS)
    def test_every_resolve_matches_from_scratch(self, kind):
        checker, scheduler, result = self._replay_checked(kind)
        assert checker.checks > 20  # the replay actually churned
        assert all(r.finish_time is not None for r in result.records)
        assert scheduler.occupied_nodes == ()
        assert len(checker._live) == 0  # every flow was removed again

    def test_replay_exercises_incremental_path(self):
        checker, _, _ = self._replay_checked("vectorized")
        assert checker.stats["incremental"] > 0
