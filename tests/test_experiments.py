"""Integration tests for the per-figure experiment drivers (smoke scale)."""

from __future__ import annotations

import pytest

from repro.experiments import figure3, figure4, figure5, figure7, figure8, figure9, figure10
from repro.experiments import model_validation, table1
from repro.experiments.harness import (
    ExperimentScale,
    PolicyComparison,
    build_network,
    compare_policies,
    policy_factories,
)
from repro.allocation.policies import allocate_contiguous
from repro.noise.background import NoiseLevel
from repro.workloads.microbench import PingPongBenchmark


SCALE = ExperimentScale.smoke()


@pytest.fixture(scope="module")
def tiny_scale() -> ExperimentScale:
    return SCALE


class TestExperimentScale:
    def test_presets(self):
        smoke = ExperimentScale.smoke()
        paper = ExperimentScale.paper()
        assert smoke.large_job_nodes < paper.large_job_nodes
        assert paper.topology().num_nodes > smoke.topology().num_nodes

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        assert ExperimentScale.from_env().name == "smoke"
        monkeypatch.setenv("REPRO_BENCH_SCALE", "paper")
        assert ExperimentScale.from_env().name == "paper"
        monkeypatch.setenv("REPRO_BENCH_SCALE", "bogus")
        with pytest.raises(ValueError):
            ExperimentScale.from_env()

    def test_scaled_size_floor(self):
        assert SCALE.scaled_size(4) >= 8

    def test_simulation_config_applies_packetization(self):
        paper = ExperimentScale.paper()
        config = paper.simulation_config()
        assert config.nic.packet_payload_bytes == paper.packet_payload_bytes

    def test_build_network(self):
        network = build_network(SCALE)
        assert network.num_nodes == SCALE.topology().num_nodes

    def test_with_seed(self):
        assert SCALE.with_seed(7).seed == 7


class TestCompare:
    def test_policy_factories_cover_three_configurations(self):
        factories = policy_factories(SCALE.simulation_config())
        assert set(factories) == {"Default", "HighBias", "AppAware"}

    def test_compare_policies_runs_all(self, tiny_scale):
        topo = tiny_scale.topology()
        allocation = allocate_contiguous(topo, 4)
        comparison = compare_policies(
            tiny_scale,
            allocation,
            lambda: PingPongBenchmark(size_bytes=1024, iterations=2),
            noise_level=NoiseLevel.NONE,
        )
        assert set(comparison.results) == {"Default", "HighBias", "AppAware"}
        normalized = comparison.normalized_medians()
        assert normalized["Default"] == pytest.approx(1.0)
        assert comparison.best_policy() in comparison.results
        assert 0.0 <= comparison.app_aware_fraction_default() <= 1.0

    def test_comparison_subset_of_policies(self, tiny_scale):
        topo = tiny_scale.topology()
        allocation = allocate_contiguous(topo, 4)
        comparison = compare_policies(
            tiny_scale,
            allocation,
            lambda: PingPongBenchmark(size_bytes=512, iterations=1),
            policies=["Default"],
            noise_level=NoiseLevel.NONE,
        )
        assert set(comparison.results) == {"Default"}
        assert comparison.app_aware_fraction_default() is None


class TestFigure3:
    def test_run_and_report(self, tiny_scale):
        result = figure3.run(tiny_scale)
        assert set(result.samples) == {
            "inter-nodes",
            "inter-blades",
            "inter-chassis",
            "inter-groups",
        }
        medians = result.medians()
        # Topological distance increases the median round-trip time.
        assert medians["inter-groups"] > medians["inter-nodes"]
        text = figure3.report(result)
        assert "Figure 3" in text and "inter-groups" in text


class TestTable1:
    def test_flits_scale_with_observation_time(self, tiny_scale):
        result = table1.run(tiny_scale, idle_unit_cycles=60_000)
        assert len(result.rows) == 2
        # Longer observation → more observed flits, although the app is idle.
        assert result.rows[1].incoming_flits > result.rows[0].incoming_flits
        assert 1.3 <= result.flit_ratio() <= 2.7
        # Normalizing by the interval removes (most of) the correlation.
        assert 0.5 <= result.normalized_ratio() <= 1.5
        assert "Table 1" in table1.report(result)


class TestFigure4:
    def test_intranode_variability_without_network(self, tiny_scale):
        result = figure4.run(tiny_scale)
        assert len(result.samples) == 4
        qcds = result.qcds()
        # Host-side effects alone produce measurable variability.
        assert any(q > 0.0 for q in qcds.values())
        assert "Figure 4" in figure4.report(result)


class TestFigure5:
    def test_qcd_comparison(self, tiny_scale):
        result = figure5.run(tiny_scale)
        assert len(result.execution_times) == 4
        for size, times in result.execution_times.items():
            assert len(times) == tiny_scale.pingpong_repetitions
            assert len(result.packet_latencies[size]) > 0
        assert "QCD" in figure5.report(result)


class TestFigure7:
    def test_series_and_report(self, tiny_scale):
        result = figure7.run(tiny_scale)
        assert len(result.series) == 4
        for sample in result.series.values():
            assert len(sample.times) == tiny_scale.pingpong_repetitions
            assert len(sample.estimates) == len(sample.times)
        for placement in figure7.PLACEMENTS:
            assert result.winner(placement) in figure7.MODES
        assert "Figure 7" in figure7.report(result)


class TestFigure8Suite:
    def test_subset_run(self, tiny_scale):
        specs = [spec for spec in figure8.benchmark_matrix() if spec[0] == "pingpong"][:1]
        result = figure8.run_suite(tiny_scale, job_nodes=6, figure="figure8", specs=specs)
        rows = result.rows()
        assert len(rows) == 1
        assert rows[0][0] == "pingpong"
        assert 0.0 <= result.app_aware_win_rate() <= 1.0
        assert "figure8" in figure8.report(result)

    def test_benchmark_matrix_names(self):
        names = {spec[0] for spec in figure8.benchmark_matrix()}
        assert names == {
            "pingpong", "allreduce", "alltoall", "barrier",
            "broadcast", "halo3d", "sweep3d",
        }

    def test_figure9_uses_small_allocation(self, tiny_scale):
        specs = [spec for spec in figure8.benchmark_matrix() if spec[0] == "barrier"]
        result = figure8.run_suite(
            tiny_scale, job_nodes=tiny_scale.small_job_nodes, figure="figure9", specs=specs
        )
        assert result.job_nodes == tiny_scale.small_job_nodes
        assert figure9.report(result)


class TestFigure10:
    def test_subset_run(self, tiny_scale):
        result = figure10.run(tiny_scale, applications=("fft", "bfs"))
        assert set(result.comparisons) == {"fft", "bfs"}
        large_winner, small_winner = result.fft_winners()
        assert large_winner in {"Default", "HighBias", "AppAware"}
        assert small_winner in {"Default", "HighBias", "AppAware"}
        assert "Figure 10" in figure10.report(result)

    def test_unknown_application_rejected(self, tiny_scale):
        with pytest.raises(KeyError):
            figure10.run(tiny_scale, applications=("bogus",))


class TestModelValidation:
    def test_correlation_positive(self, tiny_scale):
        result = model_validation.run(tiny_scale, num_allocations=2)
        assert len(result.samples) == 2 * len(model_validation.MESSAGE_SIZES)
        # The model must track the measurements reasonably well (the paper
        # reports 0.79 on hardware; the simulator is cleaner than reality).
        assert result.correlation() > 0.5
        assert "correlation" in model_validation.report(result)
