"""Cluster-trace replay: trace model, FIFO scheduler, interference report.

Covers the multi-tenant subsystem end to end: trace generation and SWF
parsing are pure functions of their inputs; the scheduler never
double-allocates nodes, queues when the machine is full, re-admits at the
completion cycle, and replays deterministically; slowdown/stretch come
from memoized isolated baselines; per-job rows fold into the
interference matrix; `cluster.job` spans and job-count gauges land in
telemetry snapshots.
"""

from __future__ import annotations

import pytest

from repro.analysis.interference import (
    format_interference,
    interference_matrix,
    interference_sums,
    matrix_from_sums,
    merge_sums,
    store_interference_report,
)
from repro.cluster import (
    ClusterReplayError,
    ClusterScheduler,
    JobTrace,
    TraceError,
    TraceJob,
    WORKLOAD_NAMES,
    jain_fairness,
)
from repro.config import SimulationConfig, TopologyConfig
from repro.model.base import build_network_model
from repro.telemetry import TELEMETRY, disable, enable, snapshot_of


@pytest.fixture(autouse=True)
def _telemetry_off():
    disable()
    yield
    disable()


def _tiny_flow_config(seed: int = 5) -> SimulationConfig:
    """A 24-node flow-backend machine — small enough to force queueing."""
    return SimulationConfig(
        topology=TopologyConfig(
            num_groups=3,
            chassis_per_group=2,
            blades_per_chassis=2,
            nodes_per_router=2,
        ),
        seed=seed,
        backend="flow",
    )


class TestTraceJob:
    def test_name_is_stable(self):
        job = TraceJob(job_id=3, submit_time=0, num_nodes=2, workload="pingpong")
        assert job.name == "j0003-pingpong"

    def test_rejects_single_node(self):
        with pytest.raises(TraceError):
            TraceJob(job_id=0, submit_time=0, num_nodes=1, workload="barrier")

    def test_rejects_unknown_workload(self):
        with pytest.raises(TraceError):
            TraceJob(job_id=0, submit_time=0, num_nodes=2, workload="spark")

    def test_rejects_negative_submit(self):
        with pytest.raises(TraceError):
            TraceJob(job_id=0, submit_time=-1, num_nodes=2, workload="barrier")

    @pytest.mark.parametrize("workload", WORKLOAD_NAMES)
    def test_builds_every_workload(self, workload):
        job = TraceJob(
            job_id=0, submit_time=0, num_nodes=4, workload=workload,
            iterations=2, size_bytes=2048,
        )
        bench = job.build_workload()
        assert bench.iterations == 2
        assert bench.warmup == 0


class TestJobTrace:
    def test_synthetic_is_deterministic(self):
        a = JobTrace.synthetic(11, 40)
        b = JobTrace.synthetic(11, 40)
        assert a.jobs == b.jobs
        assert a.jobs != JobTrace.synthetic(12, 40).jobs

    def test_synthetic_respects_bounds(self):
        trace = JobTrace.synthetic(3, 50, min_nodes=4, max_nodes=16)
        assert all(4 <= j.num_nodes <= 16 for j in trace)
        submits = [j.submit_time for j in trace]
        assert submits == sorted(submits)

    def test_synthetic_rejects_bad_load(self):
        with pytest.raises(TraceError):
            JobTrace.synthetic(0, 5, load="crushing")

    def test_duplicate_ids_rejected(self):
        job = TraceJob(job_id=0, submit_time=0, num_nodes=2, workload="barrier")
        with pytest.raises(TraceError):
            JobTrace(name="dup", jobs=(job, job))

    def test_validate_rejects_oversized_job(self):
        trace = JobTrace.synthetic(0, 5, min_nodes=8, max_nodes=8)
        with pytest.raises(TraceError):
            trace.validate(4)

    def test_describe_mentions_mix(self):
        trace = JobTrace.synthetic(1, 10)
        text = trace.describe()
        assert "10 job(s)" in text

    def test_swf_parsing(self):
        text = """
        ; SWF header comment
        1 0 0 10 4 -1 -1 4 -1 -1 1
        2 5 0 4000 2 -1 -1 2 -1 -1 1
        3 -1 0 10 4
        """
        trace = JobTrace.from_swf(text, cycles_per_second=1000, max_nodes=8)
        assert len(trace) == 2  # sentinel (-1 submit) row skipped
        first, second = trace.jobs
        assert first.submit_time == 0 and first.num_nodes == 4
        assert second.submit_time == 5000
        assert second.iterations == 2  # >= 1h run time
        # Workloads derive from job ids — no RNG, so re-parses agree.
        assert trace.jobs == JobTrace.from_swf(text, max_nodes=8).jobs

    def test_swf_clamps_node_counts(self):
        trace = JobTrace.from_swf("7 0 0 10 500", max_nodes=16)
        assert trace.jobs[0].num_nodes == 16

    def test_swf_rejects_garbage(self):
        with pytest.raises(TraceError):
            JobTrace.from_swf("1 2 3")
        with pytest.raises(TraceError):
            JobTrace.from_swf("; only comments\n")
        with pytest.raises(TraceError):
            JobTrace.from_swf("x y z w v")


class TestClusterScheduler:
    def _replay(self, *, baseline=False, seed=5, jobs=10, config=None):
        config = config or _tiny_flow_config(seed)
        network = build_network_model(config)
        trace = JobTrace.synthetic(seed, jobs, load="heavy", max_nodes=8)
        factory = (lambda: build_network_model(config)) if baseline else None
        scheduler = ClusterScheduler(network, trace, baseline_factory=factory)
        return scheduler, scheduler.replay()

    def test_all_jobs_complete(self):
        scheduler, result = self._replay()
        assert len(result.records) == 10
        for record in result.records:
            assert record.submit_time is not None
            assert record.start_time is not None
            assert record.finish_time is not None
            assert record.finish_time > record.start_time
            assert len(record.nodes) == record.job.num_nodes
        assert scheduler.occupied_nodes == ()
        assert scheduler.jobs_running == 0 and scheduler.jobs_queued == 0

    def test_replay_is_deterministic(self):
        _, first = self._replay(baseline=True)
        _, second = self._replay(baseline=True)
        assert first.job_rows() == second.job_rows()
        assert first.metrics() == second.metrics()

    def test_queueing_happens_on_a_full_machine(self):
        # Four 12-node jobs burst-arrive on a 24-node machine: at most two
        # run concurrently, so at least one must wait for a completion.
        config = _tiny_flow_config()
        network = build_network_model(config)
        trace = JobTrace(
            name="burst",
            jobs=tuple(
                TraceJob(
                    job_id=i, submit_time=0, num_nodes=12,
                    workload="allreduce", size_bytes=4096,
                )
                for i in range(4)
            ),
        )
        result = ClusterScheduler(network, trace).replay()
        waits = [r.wait_time for r in result.records]
        assert any(w > 0 for w in waits)
        assert all(w >= 0 for w in waits)
        # FIFO: a later job never starts before an earlier one.
        starts = [r.start_time for r in sorted(result.records, key=lambda r: r.job.job_id)]
        assert starts == sorted(starts)

    def test_concurrent_jobs_never_share_nodes(self):
        _, result = self._replay(jobs=16)
        spans = [
            (r.start_time, r.finish_time, set(r.nodes)) for r in result.records
        ]
        for i, (s1, f1, n1) in enumerate(spans):
            for s2, f2, n2 in spans[i + 1 :]:
                if s1 < f2 and s2 < f1:  # lifetimes overlap
                    assert not n1 & n2

    def test_baseline_slowdowns(self):
        _, result = self._replay(baseline=True)
        metrics = result.metrics()
        assert metrics["jobs"] == 10.0
        for key in ("mean_slowdown", "p95_slowdown", "max_slowdown",
                    "fairness", "mean_stretch"):
            assert key in metrics
        assert 0.0 < metrics["fairness"] <= 1.0
        for record in result.records:
            assert record.isolated_cycles is not None
            assert record.slowdown is not None
            assert record.stretch >= record.slowdown

    def test_metrics_without_baseline(self):
        _, result = self._replay(baseline=False)
        metrics = result.metrics()
        assert "mean_slowdown" not in metrics
        assert metrics["makespan"] > 0

    def test_slowdown_table_lists_every_job(self):
        _, result = self._replay(baseline=True)
        table = result.slowdown_table()
        for record in result.records:
            assert record.job.workload in table
        assert "slowdown" in table

    def test_replays_exactly_once(self):
        scheduler, _ = self._replay()
        with pytest.raises(ClusterReplayError):
            scheduler.replay()

    def test_trace_must_fit_machine(self):
        config = _tiny_flow_config()
        network = build_network_model(config)
        trace = JobTrace.synthetic(0, 3, min_nodes=32, max_nodes=32)
        with pytest.raises(TraceError):
            ClusterScheduler(network, trace)

    def test_event_budget_enforced(self):
        config = _tiny_flow_config()
        network = build_network_model(config)
        trace = JobTrace.synthetic(5, 10, load="heavy", max_nodes=8)
        scheduler = ClusterScheduler(network, trace, max_events=10)
        with pytest.raises(ClusterReplayError):
            scheduler.replay()

    def test_flit_backend_also_replays(self):
        # The scheduler is backend-agnostic: same contract on flit.
        config = SimulationConfig.tiny(seed=11)
        network = build_network_model(config)
        trace = JobTrace.synthetic(7, 4, load="heavy", max_nodes=4)
        _ = ClusterScheduler(network, trace).replay()

    def test_telemetry_spans_and_gauges(self):
        enable()
        try:
            self._replay(jobs=6)
            snapshot = snapshot_of(TELEMETRY.tracer, TELEMETRY.metrics)
        finally:
            disable()
        spans = snapshot["spans"]
        assert spans["cluster.job"]["count"] == 6
        assert "cluster.replay" in spans
        assert snapshot["counters"]["cluster.jobs_submitted"] == 6
        assert snapshot["counters"]["cluster.jobs_completed"] == 6
        assert snapshot["gauges"]["cluster.jobs_running"] == 0
        job_events = [
            e for e in snapshot["events"] if e["name"] == "cluster.job"
        ]
        assert all(e["cat"] == "cluster" for e in job_events)
        assert all("wait" in e["args"] for e in job_events)


class TestJainFairness:
    def test_equal_values_are_fair(self):
        assert jain_fairness([2.0, 2.0, 2.0]) == pytest.approx(1.0)

    def test_unequal_values_drop_below_one(self):
        index = jain_fairness([1.0, 1.0, 10.0])
        assert 1.0 / 3.0 < index < 1.0

    def test_empty_is_none(self):
        assert jain_fairness([]) is None
        assert jain_fairness([None, None]) is None


def _row(job_id, workload, start, finish, slowdown):
    return {
        "job_id": job_id,
        "workload": workload,
        "start": start,
        "finish": finish,
        "slowdown": slowdown,
    }


class TestInterferenceMatrix:
    def test_full_overlap_weights_one(self):
        rows = [
            _row(0, "pingpong", 0, 100, 1.5),
            _row(1, "alltoall", 0, 100, 1.2),
        ]
        matrix = interference_matrix(rows)
        # Each is fully overlapped by the other, and by nothing of its own kind.
        assert matrix["pingpong"]["alltoall"] == pytest.approx(1.5)
        assert matrix["alltoall"]["pingpong"] == pytest.approx(1.2)
        assert "pingpong" not in matrix.get("pingpong", {})

    def test_partial_overlap_weights_fraction(self):
        rows = [
            _row(0, "pingpong", 0, 100, 2.0),
            _row(1, "barrier", 50, 200, 1.0),
        ]
        sums = interference_sums(rows)
        num, den = sums[("pingpong", "barrier")]
        assert den == pytest.approx(0.5)  # half the victim's runtime
        assert num == pytest.approx(1.0)
        assert matrix_from_sums(sums)["pingpong"]["barrier"] == pytest.approx(2.0)

    def test_self_interference_excludes_own_interval(self):
        rows = [
            _row(0, "barrier", 0, 100, 1.1),
            _row(1, "barrier", 0, 100, 1.3),
        ]
        matrix = interference_matrix(rows)
        # Each barrier job's aggressor set is the *other* barrier job.
        assert matrix["barrier"]["barrier"] == pytest.approx(1.2)

    def test_disjoint_jobs_produce_empty_matrix(self):
        rows = [
            _row(0, "pingpong", 0, 100, 1.0),
            _row(1, "alltoall", 200, 300, 1.0),
        ]
        assert interference_matrix(rows) == {}

    def test_rows_without_slowdown_are_skipped(self):
        rows = [
            _row(0, "pingpong", 0, 100, None),
            _row(1, "alltoall", 0, 100, 1.2),
        ]
        matrix = interference_matrix(rows)
        assert "pingpong" not in matrix
        assert matrix["alltoall"]["pingpong"] == pytest.approx(1.2)

    def test_merge_pools_across_replays(self):
        rows = [
            _row(0, "pingpong", 0, 100, 1.0),
            _row(1, "barrier", 0, 100, 1.0),
        ]
        pooled = merge_sums(interference_sums(rows), interference_sums(rows))
        assert pooled[("pingpong", "barrier")][1] == pytest.approx(2.0)

    def test_format_renders_missing_cells_as_dash(self):
        text = format_interference({"pingpong": {"barrier": 1.25}})
        assert "1.250" in text
        assert "-" in text
        assert "victim" in text

    def test_format_empty(self):
        assert "no overlapping jobs" in format_interference({})


class TestClusterScenario:
    """The campaign face of the subsystem: registration and planning."""

    def test_registered_with_tags_and_grid(self):
        from repro.campaign import ensure_builtin_scenarios, get_scenario

        ensure_builtin_scenarios()
        scen = get_scenario("cluster-trace")
        assert "flow-only" in scen.tags
        assert "cluster" in scen.tags
        # jobs(1) x policy(3) x mode(2) x load(2)
        assert scen.grid_size() == 12

    def test_flow_only_expands_pinned_to_flow(self):
        from repro.campaign import (
            ensure_builtin_scenarios,
            expand_scenario,
            get_scenario,
        )

        ensure_builtin_scenarios()
        specs = expand_scenario(get_scenario("cluster-trace"))
        assert len(specs) == 12
        assert all(spec.backend == "flow" for spec in specs)
        # Distinct cells hash apart; identical expansion hashes stably.
        hashes = [spec.spec_hash() for spec in specs]
        assert len(set(hashes)) == len(hashes)
        again = expand_scenario(get_scenario("cluster-trace"))
        assert hashes == [spec.spec_hash() for spec in again]

    def test_cost_hints_scale_with_load(self):
        from repro.campaign import ensure_builtin_scenarios, get_scenario
        from repro.experiments.harness import ExperimentScale

        ensure_builtin_scenarios()
        scen = get_scenario("cluster-trace")
        smoke = ExperimentScale.smoke()
        light = scen.cost_hints(
            smoke, jobs=200, policy="scattered", mode="ADAPTIVE_3", load="light"
        )
        heavy = scen.cost_hints(
            smoke, jobs=200, policy="scattered", mode="ADAPTIVE_3", load="heavy"
        )
        assert light["nodes"] == heavy["nodes"] == 1056
        assert heavy["concurrent_flows"] > light["concurrent_flows"]


class TestStoreInterferenceReport:
    def test_empty_store_returns_none(self, tmp_path):
        from repro.campaign.store import ArtifactStore

        store = ArtifactStore(tmp_path / "store")
        assert store_interference_report(store) is None

    def test_pools_cells_by_routing_mode(self, tmp_path):
        import json

        class FakeStore:
            root = tmp_path

            def index(self):
                return {
                    "h1": {
                        "scenario": "cluster-trace",
                        "params": {"mode": "ADAPTIVE_3"},
                        "result": "r1.json",
                    },
                    "h2": {
                        "scenario": "cluster-trace",
                        "params": {"mode": "MIN_HASH"},
                        "result": "r2.json",
                    },
                    "h3": {"scenario": "other", "result": "r1.json"},
                }

        rows = [
            _row(0, "pingpong", 0, 100, 1.4),
            _row(1, "barrier", 0, 100, 1.1),
        ]
        payload = {"data": {"jobs": rows}}
        (tmp_path / "r1.json").write_text(json.dumps(payload))
        (tmp_path / "r2.json").write_text(json.dumps(payload))
        report = store_interference_report(FakeStore())
        assert "ADAPTIVE_3" in report
        assert "MIN_HASH" in report
        assert "1.400" in report
