"""Tests for the NIC performance counters."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import NicConfig
from repro.network.counters import CounterSnapshot, CounterWraparoundError, NicCounters


class TestNicCounters:
    def test_initial_state(self):
        counters = NicCounters()
        snap = counters.snapshot()
        assert snap.request_flits == 0
        assert snap.stall_ratio == 0.0
        assert snap.avg_packet_latency == 0.0

    def test_packet_injection_updates_flits_and_packets(self):
        counters = NicCounters()
        counters.on_packet_injected(5)
        counters.on_packet_injected(3)
        assert counters.request_packets == 2
        assert counters.request_flits == 8

    def test_stall_accumulation(self):
        counters = NicCounters()
        counters.on_packet_injected(10)
        counters.on_stall(30)
        counters.on_stall(20)
        assert counters.snapshot().stall_ratio == pytest.approx(5.0)

    def test_negative_stall_rejected(self):
        with pytest.raises(ValueError):
            NicCounters().on_stall(-1)

    def test_latency_accumulation(self):
        counters = NicCounters()
        counters.on_response(100.0)
        counters.on_response(300.0)
        assert counters.snapshot().avg_packet_latency == pytest.approx(200.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            NicCounters().on_response(-5)

    def test_reset(self):
        counters = NicCounters()
        counters.on_packet_injected(5)
        counters.on_stall(10)
        counters.on_response(50)
        counters.reset()
        snap = counters.snapshot()
        assert snap.request_flits == 0
        assert snap.request_packets == 0
        assert snap.responses_received == 0

    def test_lifetime_properties_match_snapshot(self):
        counters = NicCounters()
        counters.on_packet_injected(4)
        counters.on_stall(8)
        counters.on_response(40)
        assert counters.stall_ratio == counters.snapshot().stall_ratio
        assert counters.avg_packet_latency == counters.snapshot().avg_packet_latency


class TestCounterSnapshot:
    def test_delta(self):
        counters = NicCounters()
        counters.on_packet_injected(5)
        counters.on_response(100)
        before = counters.snapshot()
        counters.on_packet_injected(5)
        counters.on_stall(10)
        counters.on_response(200)
        delta = counters.snapshot().delta(before)
        assert delta.request_packets == 1
        assert delta.request_flits == 5
        assert delta.request_flits_stalled_cycles == 10
        assert delta.responses_received == 1
        assert delta.avg_packet_latency == pytest.approx(200.0)

    def test_latency_us_conversion(self):
        nic = NicConfig(clock_hz=2e9)
        snap = CounterSnapshot(
            request_flits=1,
            request_flits_stalled_cycles=0,
            request_packets=1,
            request_packets_cum_latency=2000.0,
            responses_received=1,
        )
        assert snap.avg_packet_latency_us(nic) == pytest.approx(1.0)

    def test_zero_division_guards(self):
        snap = CounterSnapshot(0, 0, 0, 0.0, 0)
        assert snap.stall_ratio == 0.0
        assert snap.avg_packet_latency == 0.0

    @given(
        flits=st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=50),
        stalls=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=50),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_stall_ratio_bounds(self, flits, stalls):
        counters = NicCounters()
        for f in flits:
            counters.on_packet_injected(f)
        for s in stalls:
            counters.on_stall(s)
        ratio = counters.snapshot().stall_ratio
        assert ratio == pytest.approx(sum(stalls) / sum(flits))


class TestCounterWraparound:
    """Hardening of CounterSnapshot.delta against counter wraparound/reset."""

    def _snap(self, flits=100, stalled=50, packets=20, latency=4000.0, responses=20):
        return CounterSnapshot(flits, stalled, packets, latency, responses)

    def test_normal_delta_unchanged(self):
        before = self._snap()
        after = CounterSnapshot(150, 80, 30, 6000.0, 30)
        delta = after.delta(before)
        assert delta.request_flits == 50
        assert delta.request_flits_stalled_cycles == 30
        assert delta.request_packets == 10
        assert delta.request_packets_cum_latency == pytest.approx(2000.0)
        assert delta.responses_received == 10

    def test_wraparound_raises_by_default(self):
        before = self._snap(flits=100)
        after = self._snap(flits=40)  # register wrapped (or was reset)
        with pytest.raises(CounterWraparoundError) as excinfo:
            after.delta(before)
        assert "request_flits" in str(excinfo.value)

    def test_wraparound_error_names_every_offending_field(self):
        before = self._snap(flits=100, packets=50)
        after = self._snap(flits=10, packets=5)
        with pytest.raises(CounterWraparoundError) as excinfo:
            after.delta(before)
        message = str(excinfo.value)
        assert "request_flits" in message
        assert "request_packets" in message

    def test_wraparound_is_a_value_error(self):
        before = self._snap(responses=9)
        after = self._snap(responses=3)
        with pytest.raises(ValueError):
            after.delta(before)

    def test_clamp_mode_zeroes_only_wrapped_fields(self):
        before = self._snap(flits=100, stalled=50)
        after = CounterSnapshot(40, 90, 25, 5000.0, 25)
        delta = after.delta(before, on_wraparound="clamp")
        assert delta.request_flits == 0  # wrapped -> clamped
        assert delta.request_flits_stalled_cycles == 40
        assert delta.request_packets == 5
        assert delta.responses_received == 5

    def test_float_latency_clamped(self):
        before = self._snap(latency=9000.0)
        after = self._snap(latency=1000.0)
        delta = after.delta(before, on_wraparound="clamp")
        assert delta.request_packets_cum_latency == 0.0
        assert isinstance(delta.request_packets_cum_latency, float)

    def test_unknown_policy_rejected(self):
        before = self._snap()
        with pytest.raises(ValueError, match="on_wraparound"):
            self._snap().delta(before, on_wraparound="ignore")

    def test_reset_between_snapshots_detected(self):
        counters = NicCounters()
        counters.on_packet_injected(5)
        counters.on_response(100.0)
        before = counters.snapshot()
        counters.reset()
        counters.on_packet_injected(2)
        with pytest.raises(CounterWraparoundError):
            counters.snapshot().delta(before)
