"""Tests for the NIC performance counters."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import NicConfig
from repro.network.counters import CounterSnapshot, NicCounters


class TestNicCounters:
    def test_initial_state(self):
        counters = NicCounters()
        snap = counters.snapshot()
        assert snap.request_flits == 0
        assert snap.stall_ratio == 0.0
        assert snap.avg_packet_latency == 0.0

    def test_packet_injection_updates_flits_and_packets(self):
        counters = NicCounters()
        counters.on_packet_injected(5)
        counters.on_packet_injected(3)
        assert counters.request_packets == 2
        assert counters.request_flits == 8

    def test_stall_accumulation(self):
        counters = NicCounters()
        counters.on_packet_injected(10)
        counters.on_stall(30)
        counters.on_stall(20)
        assert counters.snapshot().stall_ratio == pytest.approx(5.0)

    def test_negative_stall_rejected(self):
        with pytest.raises(ValueError):
            NicCounters().on_stall(-1)

    def test_latency_accumulation(self):
        counters = NicCounters()
        counters.on_response(100.0)
        counters.on_response(300.0)
        assert counters.snapshot().avg_packet_latency == pytest.approx(200.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            NicCounters().on_response(-5)

    def test_reset(self):
        counters = NicCounters()
        counters.on_packet_injected(5)
        counters.on_stall(10)
        counters.on_response(50)
        counters.reset()
        snap = counters.snapshot()
        assert snap.request_flits == 0
        assert snap.request_packets == 0
        assert snap.responses_received == 0

    def test_lifetime_properties_match_snapshot(self):
        counters = NicCounters()
        counters.on_packet_injected(4)
        counters.on_stall(8)
        counters.on_response(40)
        assert counters.stall_ratio == counters.snapshot().stall_ratio
        assert counters.avg_packet_latency == counters.snapshot().avg_packet_latency


class TestCounterSnapshot:
    def test_delta(self):
        counters = NicCounters()
        counters.on_packet_injected(5)
        counters.on_response(100)
        before = counters.snapshot()
        counters.on_packet_injected(5)
        counters.on_stall(10)
        counters.on_response(200)
        delta = counters.snapshot().delta(before)
        assert delta.request_packets == 1
        assert delta.request_flits == 5
        assert delta.request_flits_stalled_cycles == 10
        assert delta.responses_received == 1
        assert delta.avg_packet_latency == pytest.approx(200.0)

    def test_latency_us_conversion(self):
        nic = NicConfig(clock_hz=2e9)
        snap = CounterSnapshot(
            request_flits=1,
            request_flits_stalled_cycles=0,
            request_packets=1,
            request_packets_cum_latency=2000.0,
            responses_received=1,
        )
        assert snap.avg_packet_latency_us(nic) == pytest.approx(1.0)

    def test_zero_division_guards(self):
        snap = CounterSnapshot(0, 0, 0, 0.0, 0)
        assert snap.stall_ratio == 0.0
        assert snap.avg_packet_latency == 0.0

    @given(
        flits=st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=50),
        stalls=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=50),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_stall_ratio_bounds(self, flits, stalls):
        counters = NicCounters()
        for f in flits:
            counters.on_packet_injected(f)
        for s in stalls:
            counters.on_stall(s)
        ratio = counters.snapshot().stall_ratio
        assert ratio == pytest.approx(sum(stalls) / sum(flits))
