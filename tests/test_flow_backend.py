"""Cross-backend parity: the flow backend against the flit-level reference.

Stated tolerances
-----------------

The flow backend is a fluid approximation, so parity is asserted within
explicit bounds rather than exactly:

* message / iteration completion times: within a factor of
  ``TIME_TOLERANCE`` (1.7x) of the flit backend;
* average packet latency ``L``: within a factor of ``LATENCY_TOLERANCE``
  (1.6x) on the modes the paper's algorithm alternates between;
* stall ratio ``s``: within ``STALL_ABS_TOLERANCE`` (0.6 cycles/flit)
  absolutely, or within a factor of 2 when the reference stall is large;
* Algorithm 1 must pick the *same* routing mode on both backends for the
  Table 1 / Figure 8 microbenchmark message sizes.
"""

from __future__ import annotations

import pytest

from repro.campaign.executor import scale_for
from repro.campaign.plan import RunSpec
from repro.campaign.store import ArtifactStore
from repro.config import SimulationConfig
from repro.core.selector import AppAwareSelector
from repro.experiments.harness import ExperimentScale, build_network
from repro.model import (
    BackendError,
    NetworkModel,
    available_backends,
    build_network_model,
)
from repro.model.flow.network import FlowNetwork
from repro.model.flow.solver import FairShareSolver, FlowState
from repro.mpi.job import MpiJob
from repro.network.network import Network
from repro.noise.background import BackgroundTraffic, NoiseLevel
from repro.routing.modes import RoutingMode
from repro.workloads.microbench import PingPongBenchmark

TIME_TOLERANCE = 1.7
LATENCY_TOLERANCE = 1.6
STALL_ABS_TOLERANCE = 0.6

#: The microbenchmark sizes Algorithm 1 is checked on (Table 1 / Figure 8).
MICROBENCH_SIZES = (1024, 8192, 65536, 1048576)


def _send_and_measure(backend: str, size_bytes: int, mode=RoutingMode.ADAPTIVE_0):
    network = build_network_model(SimulationConfig.tiny(), backend=backend)
    message = network.send(0, network.num_nodes - 1, size_bytes, routing_mode=mode)
    network.run_until_idle()
    counters = network.nic(0).counters
    return message, counters, network


def _ratio(a: float, b: float) -> float:
    low, high = sorted((a, b))
    return high / max(1e-9, low)


# -- registry / protocol ---------------------------------------------------------


class TestBackendRegistry:
    def test_builtin_backends_registered(self):
        assert set(available_backends()) >= {"flit", "flow"}

    def test_config_backend_selects_model(self):
        flit = build_network_model(SimulationConfig.tiny())
        flow = build_network_model(SimulationConfig.tiny().with_backend("flow"))
        assert isinstance(flit, Network) and flit.backend_name == "flit"
        assert isinstance(flow, FlowNetwork) and flow.backend_name == "flow"

    def test_explicit_backend_overrides_config(self):
        network = build_network_model(
            SimulationConfig.tiny().with_backend("flit"), backend="flow"
        )
        assert network.backend_name == "flow"

    def test_unknown_backend_raises(self):
        with pytest.raises(BackendError, match="unknown network-model backend"):
            build_network_model(SimulationConfig.tiny(), backend="quantum")

    def test_both_backends_implement_protocol(self):
        for backend in ("flit", "flow"):
            network = build_network_model(SimulationConfig.tiny(), backend=backend)
            assert isinstance(network, NetworkModel)
            assert network.num_nodes == network.config.topology.num_nodes
            assert network.num_routers == network.config.topology.num_routers

    def test_flow_send_validates_nodes(self):
        network = build_network_model(SimulationConfig.tiny(), backend="flow")
        with pytest.raises(ValueError):
            network.send(0, 0, 1024)
        with pytest.raises(ValueError):
            network.send(0, network.num_nodes, 1024)


# -- the fair-share solver -------------------------------------------------------


class TestFairShareSolver:
    def test_two_flows_share_a_link_equally(self):
        solver = FairShareSolver(lambda key: 1.0)
        flows = [FlowState(i, ("l",), 100.0) for i in range(2)]
        solver.solve(flows)
        assert flows[0].rate == pytest.approx(0.5)
        assert flows[1].rate == pytest.approx(0.5)

    def test_capped_flow_releases_bandwidth(self):
        solver = FairShareSolver(lambda key: 1.0)
        capped = FlowState(0, ("l",), 100.0, cap=0.2)
        greedy = FlowState(1, ("l",), 100.0)
        solver.solve([capped, greedy])
        assert capped.rate == pytest.approx(0.2)
        assert greedy.rate == pytest.approx(0.8)

    def test_multi_link_bottleneck(self):
        capacities = {"narrow": 0.5, "wide": 4.0}
        solver = FairShareSolver(capacities.__getitem__)
        through_narrow = FlowState(0, ("narrow", "wide"), 100.0)
        wide_only = FlowState(1, ("wide",), 100.0)
        solver.solve([through_narrow, wide_only])
        assert through_narrow.rate == pytest.approx(0.5)
        # Max-min: the wide-only flow absorbs the rest of the wide link.
        assert wide_only.rate == pytest.approx(3.5)

    def test_completion_horizon(self):
        solver = FairShareSolver(lambda key: 1.0)
        fast = FlowState(0, ("a",), 10.0)
        slow = FlowState(1, ("b",), 100.0)
        solver.solve([fast, slow])
        assert solver.completion_horizon([fast, slow]) == pytest.approx(10.0)


# -- message-level parity ---------------------------------------------------------


class TestMessageParity:
    @pytest.mark.parametrize("size_bytes", [512, 4096, 65536])
    def test_completion_time_within_tolerance(self, size_bytes):
        flit_msg, _, _ = _send_and_measure("flit", size_bytes)
        flow_msg, _, _ = _send_and_measure("flow", size_bytes)
        assert _ratio(flit_msg.transmission_time, flow_msg.transmission_time) <= TIME_TOLERANCE
        assert _ratio(flit_msg.acked_time, flow_msg.acked_time) <= TIME_TOLERANCE

    @pytest.mark.parametrize("size_bytes", [4096, 65536])
    def test_latency_within_tolerance(self, size_bytes):
        _, flit_counters, _ = _send_and_measure("flit", size_bytes)
        _, flow_counters, _ = _send_and_measure("flow", size_bytes)
        assert (
            _ratio(flit_counters.avg_packet_latency, flow_counters.avg_packet_latency)
            <= LATENCY_TOLERANCE
        )

    @pytest.mark.parametrize("size_bytes", [4096, 65536])
    def test_idle_stall_ratio_close(self, size_bytes):
        _, flit_counters, _ = _send_and_measure("flit", size_bytes)
        _, flow_counters, _ = _send_and_measure("flow", size_bytes)
        assert abs(flit_counters.stall_ratio - flow_counters.stall_ratio) <= STALL_ABS_TOLERANCE

    def test_in_order_structural_stall_matches(self):
        """Forcing one minimal path stalls similarly on both backends (Fig. 7)."""
        flit_msg, flit_counters, _ = _send_and_measure(
            "flit", 65536, RoutingMode.IN_ORDER
        )
        flow_msg, flow_counters, _ = _send_and_measure(
            "flow", 65536, RoutingMode.IN_ORDER
        )
        assert _ratio(flit_msg.transmission_time, flow_msg.transmission_time) <= 1.2
        assert flit_counters.stall_ratio > 1.0
        assert flow_counters.stall_ratio > 1.0
        assert _ratio(flit_counters.stall_ratio, flow_counters.stall_ratio) <= 2.0

    def test_counter_surface_identical_shape(self):
        """Both backends feed the exact counter fields Algorithm 1 reads."""
        for backend in ("flit", "flow"):
            _, counters, _ = _send_and_measure(backend, 4096)
            assert counters.request_packets == 64
            assert counters.request_flits == 320
            assert counters.responses_received == 64
            assert counters.request_packets_cum_latency > 0


def _congested(backend: str, mode: RoutingMode):
    network = build_network_model(SimulationConfig.small(), backend=backend)
    n = network.num_nodes
    for i in range(2, 14):
        network.send(i, n - 1 - i, 32768)
    message = network.send(0, n - 1, 32768, routing_mode=mode)
    network.run_until_idle()
    return message, network.nic(0).counters


class TestCongestedParity:
    def test_stall_rises_on_both_backends(self):
        results = {}
        for backend in ("flit", "flow"):
            _, idle, _ = _send_and_measure(backend, 32768)
            _, congested = _congested(backend, RoutingMode.ADAPTIVE_0)
            assert congested.stall_ratio > idle.stall_ratio
            assert congested.avg_packet_latency > idle.avg_packet_latency
            results[backend] = congested
        assert _ratio(results["flit"].stall_ratio, results["flow"].stall_ratio) <= 2.0
        assert (
            _ratio(
                results["flit"].avg_packet_latency,
                results["flow"].avg_packet_latency,
            )
            <= LATENCY_TOLERANCE
        )

    def test_completion_time_parity_under_congestion(self):
        flit_msg, _ = _congested("flit", RoutingMode.ADAPTIVE_0)
        flow_msg, _ = _congested("flow", RoutingMode.ADAPTIVE_0)
        assert _ratio(flit_msg.transmission_time, flow_msg.transmission_time) <= TIME_TOLERANCE


# -- Algorithm 1 agreement --------------------------------------------------------


class TestAlgorithm1Agreement:
    def _decisions(self, backend: str, congested: bool):
        """Algorithm 1's choice per microbench size, from measured counters."""
        if congested:
            _, counters = _congested(backend, RoutingMode.ADAPTIVE_0)
        else:
            _, counters, _ = _send_and_measure(backend, 32768)
        nic_config = SimulationConfig.tiny().nic
        modes = []
        for size in MICROBENCH_SIZES:
            selector = AppAwareSelector(nic_config)
            selector.observe(
                counters.avg_packet_latency,
                counters.stall_ratio,
                mode=RoutingMode.ADAPTIVE_0,
            )
            modes.append(selector.select_routing(size))
        return modes

    def test_same_modes_under_congestion(self):
        """The regime Algorithm 1 targets: heavy minimal-path contention."""
        assert self._decisions("flit", congested=True) == self._decisions(
            "flow", congested=True
        )

    def test_small_messages_high_bias_on_both(self):
        """Below the 4 KiB cumulative threshold both backends stay High Bias."""
        for congested in (False, True):
            flit_modes = self._decisions("flit", congested)
            flow_modes = self._decisions("flow", congested)
            assert flit_modes[0] is RoutingMode.ADAPTIVE_3
            assert flow_modes[0] is RoutingMode.ADAPTIVE_3


# -- MPI-layer parity --------------------------------------------------------------


class TestJobParity:
    def _pingpong_median(self, backend: str) -> float:
        network = build_network_model(SimulationConfig.small(), backend=backend)
        allocation = [0, network.num_nodes - 1]
        noise = BackgroundTraffic.for_level(
            network, allocation, NoiseLevel.MODERATE, name="parity-noise"
        )
        if noise is not None:
            noise.start()
        job = MpiJob(network, allocation, name=f"parity-{backend}")
        workload = PingPongBenchmark(size_bytes=16384, iterations=5, warmup=1)
        result = workload.run(job)
        if noise is not None:
            noise.stop()
        return result.median_time()

    def test_noisy_pingpong_median_within_tolerance(self):
        assert (
            _ratio(self._pingpong_median("flit"), self._pingpong_median("flow"))
            <= TIME_TOLERANCE
        )

    def test_flow_backend_runs_collectives(self):
        network = build_network_model(SimulationConfig.tiny(), backend="flow")
        job = MpiJob(network, list(range(6)), name="coll-flow")

        def program(ctx):
            yield from ctx.allreduce(1024)
            yield from ctx.barrier()

        finished_at = job.run(program)
        assert job.finished
        assert finished_at > 0
        assert network.delivered_messages > 0


# -- campaign integration ----------------------------------------------------------


class TestCampaignBackendThreading:
    def test_spec_hash_distinguishes_backends(self):
        flit_spec = RunSpec.make("pingpong-placement", {"message_kib": 4})
        flow_spec = RunSpec.make(
            "pingpong-placement", {"message_kib": 4}, backend="flow"
        )
        assert flit_spec.spec_hash() != flow_spec.spec_hash()
        assert flit_spec.canonical()["backend"] == "flit"
        assert flow_spec.canonical()["backend"] == "flow"
        assert flow_spec.label().endswith("@flow")

    def test_cached_flit_results_not_served_for_flow(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        flit_spec = RunSpec.make("_toy", {"x": 1})
        flow_spec = RunSpec.make("_toy", {"x": 1}, backend="flow")
        store.save(flit_spec, {"metrics": {"v": 1.0}}, "report", 0.1)
        assert store.has(flit_spec)
        assert not store.has(flow_spec)

    def test_scale_for_threads_backend(self):
        spec = RunSpec.make("pingpong-placement", {"message_kib": 4}, backend="flow")
        scale = scale_for(spec)
        assert scale.backend == "flow"
        network = build_network(scale)
        assert network.backend_name == "flow"

    def test_experiment_scale_backend_roundtrip(self):
        scale = ExperimentScale.smoke().with_backend("flow")
        assert scale.simulation_config().backend == "flow"
        assert build_network(scale).backend_name == "flow"
        assert build_network(ExperimentScale.smoke()).backend_name == "flit"

    def test_cli_backend_flag(self):
        from repro.experiments.cli import build_campaign_parser

        args = build_campaign_parser().parse_args(
            ["run", "pingpong-placement", "--backend", "flow", "--dry-run"]
        )
        assert args.backend == "flow"

    def test_campaign_executes_same_scenario_on_both_backends(self):
        from repro.campaign import ensure_builtin_scenarios, execute_spec

        ensure_builtin_scenarios()
        medians = {}
        for backend in ("flit", "flow"):
            spec = RunSpec.make(
                "pingpong-placement",
                {"message_kib": 4, "noise": "none", "placement": "inter-blades"},
                backend=backend,
            )
            payload, report, _elapsed = execute_spec(spec)
            assert "median" in payload["metrics"]
            medians[backend] = payload["metrics"]["median"]
        assert _ratio(medians["flit"], medians["flow"]) <= TIME_TOLERANCE


# -- flow-only large scenarios ------------------------------------------------------


class TestLargeFlowScenarios:
    def test_large_scenarios_registered(self):
        from repro.campaign import ensure_builtin_scenarios
        from repro.campaign.registry import get_scenario

        ensure_builtin_scenarios()
        for name in ("bisection-stress-large", "bisection-full", "noise-sweep-large"):
            spec = get_scenario(name)
            assert "flow-only" in spec.tags

    def test_flow_only_specs_hash_as_flow_regardless_of_request(self):
        """The planner pins backend="flow" for flow-only scenarios, so the
        same execution never gets two hashes (or a flit-labelled cache)."""
        from repro.campaign import ensure_builtin_scenarios
        from repro.campaign.plan import plan_campaign

        ensure_builtin_scenarios()
        as_flit = plan_campaign(["bisection-stress-large"], backend="flit")
        as_flow = plan_campaign(["bisection-stress-large"], backend="flow")
        assert all(spec.backend == "flow" for spec in as_flit)
        assert [s.spec_hash() for s in as_flit] == [s.spec_hash() for s in as_flow]
        # The invariant holds for directly built specs too, not just the
        # planner: RunSpec.make consults the registry tags.
        direct = RunSpec.make(
            "bisection-stress-large",
            {"mode": "ADAPTIVE_0", "message_kib": 64, "noise": "none"},
        )
        assert direct.backend == "flow"
        assert direct.canonical()["backend"] == "flow"

    def test_bisection_stress_runs_at_smoke_scale(self):
        from repro.campaign import ensure_builtin_scenarios, execute_spec

        ensure_builtin_scenarios()
        spec = RunSpec.make(
            "bisection-stress-large",
            {"mode": "ADAPTIVE_0", "message_kib": 64, "noise": "none"},
        )
        payload, _report, _elapsed = execute_spec(spec)
        assert payload["data"]["nodes"] == 1056
        assert payload["data"]["backend"] == "flow"
        assert payload["metrics"]["median"] > 0

    def test_bisection_full_runs_all_pairs_without_waves(self):
        """The 528-pair no-wave grid the vectorized solver unlocked."""
        from repro.campaign import ensure_builtin_scenarios, execute_spec

        ensure_builtin_scenarios()
        spec = RunSpec.make(
            "bisection-full",
            {"mode": "ADAPTIVE_0", "message_kib": 64, "noise": "none"},
        )
        assert spec.backend == "flow"
        payload, _report, _elapsed = execute_spec(spec)
        assert payload["data"]["nodes"] == 1056
        assert payload["data"]["pairs"] == 528
        # All 1056 messages in flight at once, each spread over paths:
        # far beyond the ~1k-flow ceiling of the pure-Python solver.
        assert payload["metrics"]["peak_flows"] >= 1056
        assert payload["metrics"]["median"] > 0


# -- flow engine behaviour ----------------------------------------------------------


class TestFlowEngine:
    def test_event_count_scales_with_messages_not_flits(self):
        """The speed claim in miniature: events per message is O(1)."""
        small_net = build_network_model(SimulationConfig.tiny(), backend="flow")
        small_net.send(0, small_net.num_nodes - 1, 1024)
        small_net.run_until_idle()
        small_events = small_net.sim.events_executed

        big_net = build_network_model(SimulationConfig.tiny(), backend="flow")
        big_net.send(0, big_net.num_nodes - 1, 1024 * 1024)
        big_net.run_until_idle()
        # A 1024x larger message may take a few more completion rounds but
        # must not cost anywhere near 1024x the events.
        assert big_net.sim.events_executed <= 4 * small_events

    def test_delivery_and_ack_ordering(self):
        network = build_network_model(SimulationConfig.tiny(), backend="flow")
        order = []
        network.send(
            0,
            3,
            4096,
            on_delivered=lambda m: order.append("delivered"),
            on_acked=lambda m: order.append("acked"),
        )
        network.run_until_idle()
        assert order == ["delivered", "acked"]
        assert network.delivered_messages == 1

    def test_reset_counters(self):
        network = build_network_model(SimulationConfig.tiny(), backend="flow")
        network.send(0, 3, 4096)
        network.run_until_idle()
        assert network.nic(0).counters.request_flits > 0
        assert network.total_flits_traversed() > 0
        network.reset_counters()
        assert network.nic(0).counters.request_flits == 0
        assert network.total_flits_traversed() == 0

    def test_concurrent_senders_share_ejection(self):
        """Incast: N senders into one node cannot beat the ejection pipe."""
        network = build_network_model(SimulationConfig.tiny(), backend="flow")
        target = network.num_nodes - 1
        acked = []
        size = 16384
        for src in (0, 1, 2, 3):
            network.send(src, target, size, on_acked=acked.append)
        network.run_until_idle()
        assert len(acked) == 4
        flits = 16384 // 64 * 5
        # Four senders through one ejection link: at least ~4x the flit
        # serialization time of a single message must elapse.
        assert network.sim.now >= 4 * flits

    def test_idle_gap_does_not_pre_drain_new_flows(self):
        """A message sent after a long idle period costs the same as a
        fresh one (regression: new flows were drained over the idle gap)."""
        def ack_duration(idle_gap: int) -> int:
            network = build_network_model(SimulationConfig.tiny(), backend="flow")
            if idle_gap:
                network.sim.schedule(idle_gap, lambda: None)
                network.run_until_idle()
            start = network.sim.now
            network.send(0, network.num_nodes - 1, 65536)
            network.run_until_idle()
            return network.sim.now - start

        assert ack_duration(idle_gap=100_000) == ack_duration(idle_gap=0)

    def test_deterministic_given_seed(self):
        def run():
            network = build_network_model(
                SimulationConfig.tiny(seed=77), backend="flow"
            )
            times = []
            for src in (0, 1, 2):
                network.send(
                    src,
                    network.num_nodes - 1 - src,
                    8192,
                    on_acked=lambda m: times.append((m.src_node, network.sim.now)),
                )
            network.run_until_idle()
            return times

        assert run() == run()
