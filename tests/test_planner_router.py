"""Backend-aware campaign planning: cost models, router, SPEC_FORMAT 3, audits.

Covers the cost/fidelity layer (:mod:`repro.model.cost` + the registry
hooks in :mod:`repro.model.base`), the plan-time backend router
(:mod:`repro.campaign.router`), the SPEC_FORMAT 3 migration rules, the
executor's flit-audit post-pass and the CLI surface (``--backend auto``,
``--budget``, ``--audit-fraction``).  The whole module runs under both
flow solver engines (CI sets ``REPRO_FLOW_SOLVER=reference``).
"""

from __future__ import annotations

import hashlib
import json
import math

import pytest

from repro.campaign import (
    ArtifactStore,
    BackendRouter,
    BudgetError,
    ensure_builtin_scenarios,
    execute_plan,
    plan_campaign,
    select_audit_pairs,
)
from repro.campaign.executor import metric_deltas
from repro.campaign.plan import (
    AUTO_BACKEND,
    DEFAULT_SEED,
    LEGACY_SPEC_FORMAT,
    SPEC_FORMAT,
    RunSpec,
    scale_for,
)
from repro.campaign.registry import Scenario, ScenarioError, register
from repro.campaign.router import estimate_cell, profile_for
from repro.experiments.cli import campaign_main, parse_override
from repro.model.base import (
    BackendError,
    available_cost_models,
    cost_model_for,
    register_cost_model,
)
from repro.model.cost import (
    CostEstimate,
    FlitCostModel,
    FlowCostModel,
    WorkloadProfile,
)
from repro.sim.rng import RandomStreams


# -- test scenario ------------------------------------------------------------------

#: Per-cell message volume of the toy scenario — spanning three orders of
#: magnitude so budget demotion has a meaningful greedy order.
_RT_MESSAGES = {"tiny": 200.0, "small": 2_000.0, "big": 20_000.0, "huge": 200_000.0}


def _rt_runner(scale, *, load="tiny"):
    """Cheap deterministic runner; payload depends on the run seed/backend."""
    streams = RandomStreams(scale.seed)
    values = [streams.randint("rt", 0, 10_000) for _ in range(4)]
    return {
        "metrics": {"total": float(sum(values)), "first": float(values[0])},
        "data": {"backend": scale.backend, "load": load},
        "report": f"rt load={load} total={sum(values)}",
    }


def _rt_cost(scale, *, load="tiny"):
    return {
        "messages": _RT_MESSAGES[load],
        "message_bytes": 16 * 1024,
        "concurrent_flows": 8.0,
    }


RT = Scenario(
    name="_router-toy",
    description="cheap deterministic scenario with wide-ranging cost hints",
    axes={"load": tuple(_RT_MESSAGES)},
    runner=_rt_runner,
    cost_hints=_rt_cost,
)


@pytest.fixture(scope="module", autouse=True)
def _registered():
    ensure_builtin_scenarios()
    try:
        register(RT)
    except ScenarioError:
        pass  # already registered by a previous module run in this process
    yield


def _auto_specs():
    return [
        RunSpec.make("_router-toy", {"load": load}, backend=AUTO_BACKEND)
        for load in _RT_MESSAGES
    ]


# -- cost models --------------------------------------------------------------------

class TestCostModels:
    def test_builtin_backends_have_cost_models(self):
        assert {"flit", "flow"} <= set(available_cost_models())

    def test_unknown_cost_model_raises_backend_error(self):
        with pytest.raises(BackendError, match="no cost model"):
            cost_model_for("no-such-backend")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(BackendError, match="already registered"):
            register_cost_model(FlitCostModel())

    def test_estimates_are_positive_and_detailed(self):
        profile = WorkloadProfile(
            nodes=24, routers=12, links=120, messages=100.0,
            flits_per_message=80.0, avg_hops=5.0, concurrent_flows=8.0,
        )
        flit = cost_model_for("flit").estimate_cost(profile)
        flow = cost_model_for("flow").estimate_cost(profile)
        assert flit.backend == "flit" and flow.backend == "flow"
        assert flit.work > 0 and flow.work > 0
        assert flit.detail["events"] > 0
        assert flow.detail["solves"] == pytest.approx(200.0)

    def test_flit_flow_cost_asymmetry(self):
        """Flit work must dwarf flow work on a message-heavy profile."""
        profile = WorkloadProfile(
            nodes=24, routers=12, links=120, messages=10_000.0,
            flits_per_message=80.0, avg_hops=5.0, concurrent_flows=8.0,
        )
        flit = FlitCostModel().estimate_cost(profile)
        flow = FlowCostModel().estimate_cost(profile)
        assert flit.work > 10.0 * flow.work

    def test_flit_cost_scales_with_message_size_flow_does_not(self):
        small = WorkloadProfile(
            nodes=24, routers=12, links=120, messages=100.0,
            flits_per_message=10.0, avg_hops=5.0, concurrent_flows=8.0,
        )
        big = WorkloadProfile(
            nodes=24, routers=12, links=120, messages=100.0,
            flits_per_message=1000.0, avg_hops=5.0, concurrent_flows=8.0,
        )
        assert FlitCostModel().estimate_cost(big).work > 50 * FlitCostModel().estimate_cost(small).work
        assert FlowCostModel().estimate_cost(big).work == FlowCostModel().estimate_cost(small).work

    def test_profile_validation(self):
        with pytest.raises(ValueError, match="non-empty machine"):
            WorkloadProfile(
                nodes=0, routers=1, links=1, messages=1.0,
                flits_per_message=1.0, avg_hops=1.0, concurrent_flows=1.0,
            )
        with pytest.raises(ValueError, match="non-negative"):
            CostEstimate(backend="flit", work=-1.0)

    def test_flit_cost_reflects_selected_engine(self, monkeypatch):
        """The flit estimate uses the engine the run will actually execute on."""
        from repro.sim.engine import SIM_ENGINE_ENV_VAR

        profile = WorkloadProfile(
            nodes=24, routers=12, links=120, messages=100.0,
            flits_per_message=80.0, avg_hops=5.0, concurrent_flows=8.0,
        )
        model = FlitCostModel()
        costs = {}
        for engine in ("calendar", "reference", "batch"):
            monkeypatch.setenv(SIM_ENGINE_ENV_VAR, engine)
            estimate = model.estimate_cost(profile)
            costs[engine] = estimate.work
            assert estimate.detail["unit_cost"] > 0
        assert costs["calendar"] == costs["reference"]
        try:
            import numpy  # noqa: F401
        except ImportError:
            assert costs["batch"] == costs["calendar"]  # fallback engine
        else:
            # Same predicted events, cheaper per-event weight on batch.
            assert costs["batch"] < costs["calendar"]
            ratio = costs["batch"] / costs["calendar"]
            assert ratio == pytest.approx(
                model.engine_unit_cost["batch"] / model.engine_unit_cost["calendar"]
            )

    def test_engine_switch_never_reorders_backends(self, monkeypatch):
        """Backend routing order is engine-independent.

        The batch engine discounts flit work by ~10%, while flow work is
        orders of magnitude below flit on message-heavy cells — so an
        engine switch must never flip a router decision.  Pinned here so a
        future re-fit of the per-engine constants that *does* cross the
        boundary fails a test instead of silently rerouting campaigns.
        """
        from repro.sim.engine import SIM_ENGINE_ENV_VAR

        profile = WorkloadProfile(
            nodes=24, routers=12, links=120, messages=10_000.0,
            flits_per_message=80.0, avg_hops=5.0, concurrent_flows=8.0,
        )
        orders = {}
        for engine in ("calendar", "reference", "batch"):
            monkeypatch.setenv(SIM_ENGINE_ENV_VAR, engine)
            flit = FlitCostModel().estimate_cost(profile).work
            flow = FlowCostModel().estimate_cost(profile).work
            orders[engine] = flit > 10.0 * flow
        assert all(orders.values()), orders


class TestProfiles:
    def test_cost_hints_drive_the_profile(self):
        spec = RunSpec.make("_router-toy", {"load": "huge"})
        profile = profile_for(spec)
        assert profile.messages == _RT_MESSAGES["huge"]
        assert profile.concurrent_flows == 8.0

    def test_large_scenario_hints_override_machine_size(self):
        spec = RunSpec.make(
            "bisection-full", {"mode": "ADAPTIVE_0", "message_kib": 64, "noise": "none"}
        )
        profile = profile_for(spec)
        assert profile.nodes == 1056
        assert profile.concurrent_flows > 1000

    def test_unregistered_scenario_uses_generic_heuristic(self):
        profile = profile_for(RunSpec.make("_not-registered-anywhere"))
        assert profile.messages > 0 and profile.nodes > 0

    def test_estimate_cell_covers_auto_candidates(self):
        estimates = estimate_cell(_auto_specs()[0])
        assert set(estimates) == {"flit", "flow"}


# -- auto specs & SPEC_FORMAT 3 -----------------------------------------------------

class TestAutoSpecs:
    def test_auto_spec_refuses_to_hash(self):
        spec = RunSpec.make("_router-toy", {"load": "tiny"}, backend=AUTO_BACKEND)
        assert spec.is_auto
        with pytest.raises(ValueError, match="auto"):
            spec.spec_hash()
        with pytest.raises(ValueError, match="auto"):
            spec.run_seed()

    def test_resolve_records_provenance(self):
        spec = RunSpec.make("_router-toy", {"load": "tiny"}, backend=AUTO_BACKEND)
        routed = spec.resolve("flow")
        assert routed.backend == "flow" and routed.routed_from == AUTO_BACKEND
        assert routed.label().endswith("@flow(auto)")
        with pytest.raises(ValueError, match="already runs"):
            routed.resolve("flit")

    def test_flow_only_scenarios_pin_under_auto(self):
        auto = RunSpec.make(
            "bisection-full",
            {"mode": "ADAPTIVE_0", "message_kib": 64, "noise": "none"},
            backend=AUTO_BACKEND,
        )
        explicit = RunSpec.make(
            "bisection-full",
            {"mode": "ADAPTIVE_0", "message_kib": 64, "noise": "none"},
            backend="flow",
        )
        # The pin is not a routing decision: no provenance, identical hash.
        assert auto.backend == "flow" and auto.routed_from is None
        assert auto.spec_hash() == explicit.spec_hash()

    def test_scale_for_unseeded_works_on_auto_specs(self):
        spec = RunSpec.make("_router-toy", {"load": "tiny"}, backend=AUTO_BACKEND)
        scale = scale_for(spec, seeded=False)
        assert scale.name == "smoke"

    def test_scale_for_seeded_threads_backend_and_seed(self):
        spec = RunSpec.make("_router-toy", {"load": "tiny"}, backend="flow")
        scale = scale_for(spec)
        assert scale.backend == "flow" and scale.seed == spec.run_seed()


class TestSpecFormatMigration:
    """SPEC_FORMAT 3: provenance hashes in; concrete-spec hashes carry over."""

    def test_format_constants(self):
        assert SPEC_FORMAT == 3 and LEGACY_SPEC_FORMAT == 2

    def test_concrete_spec_keeps_byte_identical_format2_hash(self):
        """Unchanged canonical form => unchanged hash (cache carry-over)."""
        spec = RunSpec.make("_router-toy", {"load": "big"}, backend="flow", seed=7)
        legacy_form = {
            "format": 2,
            "scenario": "_router-toy",
            "params": {"load": "big"},
            "scale": "smoke",
            "seed": 7,
            "backend": "flow",
        }
        text = json.dumps(legacy_form, sort_keys=True, separators=(",", ":"))
        legacy_hash = hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]
        assert spec.canonical() == legacy_form
        assert spec.spec_hash() == legacy_hash

    def test_routed_spec_emits_format3_with_provenance(self):
        routed = RunSpec.make(
            "_router-toy", {"load": "big"}, backend=AUTO_BACKEND
        ).resolve("flow")
        form = routed.canonical()
        assert form["format"] == SPEC_FORMAT
        assert form["routed_from"] == AUTO_BACKEND

    def test_auto_routed_spec_never_served_a_format2_cache_entry(self, tmp_path):
        """A pinned flow result must not satisfy the auto-routed twin."""
        store = ArtifactStore(tmp_path / "store")
        pinned = RunSpec.make("_router-toy", {"load": "tiny"}, backend="flow")
        store.save(pinned, {"metrics": {"total": 1.0}})
        routed = RunSpec.make(
            "_router-toy", {"load": "tiny"}, backend=AUTO_BACKEND
        ).resolve("flow")
        assert routed.spec_hash() != pinned.spec_hash()
        assert store.has(pinned) and not store.has(routed)
        # And the executor treats the routed spec as a cache miss.
        plan = plan_campaign(
            ["_router-toy"],
            overrides={"load": ("tiny",)},
            backend=AUTO_BACKEND,
            router=BackendRouter(budget=None, cell_cap=1.0),  # cheapest => flow
        )
        assert plan.specs[0].backend == "flow"
        result = execute_plan(plan, store=store)
        assert result.executed == 1 and result.cached == 0

    def test_run_seeds_differ_between_pinned_and_routed(self):
        pinned = RunSpec.make("_router-toy", {"load": "tiny"}, backend="flow")
        routed = RunSpec.make(
            "_router-toy", {"load": "tiny"}, backend=AUTO_BACKEND
        ).resolve("flow")
        assert pinned.run_seed() != routed.run_seed()


# -- router -------------------------------------------------------------------------

class TestBackendRouter:
    def test_default_routing_prefers_fidelity(self):
        cells = BackendRouter().route(_auto_specs())
        assert all(cell.chosen == "flit" for cell in cells)
        assert all(cell.reason == "fidelity" for cell in cells)
        assert all(cell.spec.backend == "flit" for cell in cells)
        assert all(cell.spec.routed_from == AUTO_BACKEND for cell in cells)
        assert all({"flit", "flow"} <= set(cell.estimates) for cell in cells)

    def test_routing_is_deterministic(self):
        baseline = BackendRouter().route(_auto_specs())
        budget = sum(cell.estimates["flow"].work for cell in baseline) * 1.01
        once = BackendRouter(budget=budget).route(_auto_specs())
        twice = BackendRouter(budget=budget).route(_auto_specs())
        assert [c.spec for c in once] == [c.spec for c in twice]

    def test_explicit_specs_are_annotated_but_never_moved(self):
        spec = RunSpec.make("_router-toy", {"load": "huge"}, backend="flit")
        cells = BackendRouter().route([spec])
        assert cells[0].spec == spec
        assert cells[0].reason == "explicit"

    def test_explicit_specs_cannot_be_demoted_to_fit_a_budget(self):
        spec = RunSpec.make("_router-toy", {"load": "huge"}, backend="flit")
        work = BackendRouter().route([spec])[0].work
        with pytest.raises(BudgetError):
            BackendRouter(budget=work * 0.5).route([spec])

    def test_flow_only_specs_report_pinned(self):
        spec = RunSpec.make(
            "bisection-full",
            {"mode": "ADAPTIVE_0", "message_kib": 64, "noise": "none"},
            backend=AUTO_BACKEND,
        )
        cells = BackendRouter().route([spec])
        assert cells[0].chosen == "flow" and cells[0].reason == "pinned"

    def test_budget_demotes_biggest_savings_first(self):
        specs = _auto_specs()
        baseline = BackendRouter().route(specs)
        flit_works = [cell.estimates["flit"].work for cell in baseline]
        flow_works = [cell.estimates["flow"].work for cell in baseline]
        savings = [f - w for f, w in zip(flit_works, flow_works)]
        # Budget that only the single biggest demotion can satisfy.
        budget = sum(flit_works) - max(savings) * 0.5
        cells = BackendRouter(budget=budget).route(specs)
        demoted = [cell for cell in cells if cell.chosen == "flow"]
        assert len(demoted) == 1
        assert demoted[0].reason == "budget"
        # The demoted cell is the one with the largest savings ("huge").
        assert demoted[0].spec.params_dict["load"] == "huge"
        assert sum(cell.work for cell in cells) <= budget

    def test_budget_can_demote_everything(self):
        specs = _auto_specs()
        baseline = BackendRouter().route(specs)
        flow_total = sum(cell.estimates["flow"].work for cell in baseline)
        cells = BackendRouter(budget=flow_total * 1.001).route(specs)
        assert all(cell.chosen == "flow" for cell in cells)
        assert sum(cell.work for cell in cells) <= flow_total * 1.001

    def test_impossible_budget_raises(self):
        specs = _auto_specs()
        baseline = BackendRouter().route(specs)
        flow_total = sum(cell.estimates["flow"].work for cell in baseline)
        with pytest.raises(BudgetError, match="cheapest routing"):
            BackendRouter(budget=flow_total * 0.5).route(specs)

    def test_cell_cap_routes_expensive_cells_to_cheapest(self):
        specs = _auto_specs()
        baseline = BackendRouter().route(specs)
        works = {c.spec.params_dict["load"]: c.estimates["flit"].work for c in baseline}
        cap = (works["big"] + works["huge"]) / 2  # only "huge" exceeds it
        cells = BackendRouter(cell_cap=cap).route(specs)
        by_load = {c.spec.params_dict["load"]: c for c in cells}
        assert by_load["huge"].chosen == "flow" and by_load["huge"].reason == "cell-cap"
        assert by_load["tiny"].chosen == "flit"

    def test_router_validation(self):
        with pytest.raises(ValueError):
            BackendRouter(budget=0.0)
        with pytest.raises(ValueError):
            BackendRouter(cell_cap=-1.0)

    def test_budget_over_unmodelled_backend_is_an_error(self):
        """A cell the router cannot cost must not count as free work."""
        spec = RunSpec.make("_router-toy", {"load": "tiny"}, backend="fancy")
        with pytest.raises(BackendError, match="no registered cost model"):
            BackendRouter(budget=100.0).route([spec])
        # Without a budget the cell is annotated (work 0) but still plans.
        cells = BackendRouter().route([spec])
        assert cells[0].work == 0.0
        assert cells[0].estimates["fancy"].detail == {"unmodelled": 1.0}

    def test_plan_campaign_annotates_costs_and_budget(self):
        plan = plan_campaign(
            ["_router-toy"],
            backend=AUTO_BACKEND,
            router=BackendRouter(budget=1e12),
        )
        assert len(plan.costs) == len(plan.specs) == len(_RT_MESSAGES)
        assert plan.budget == 1e12
        assert plan.total_work == pytest.approx(sum(c.work for c in plan.costs))
        text = plan.describe()
        assert "estimated work:" in text
        assert "budget:" in text
        assert plan.specs[0].spec_hash() in text

    def test_blind_plans_stay_unannotated(self):
        plan = plan_campaign(["_router-toy"])
        assert plan.costs == () and plan.total_work is None
        assert "estimated work" not in plan.describe()


# -- audit selection & execution ----------------------------------------------------

def _flow_plan(loads=("tiny", "small"), seed=DEFAULT_SEED):
    """A fully flow-routed toy plan (budget pressure demotes every cell)."""
    baseline = plan_campaign(
        ["_router-toy"], overrides={"load": loads}, backend=AUTO_BACKEND, seed=seed
    )
    flow_total = sum(cell.estimates["flow"].work for cell in baseline.costs)
    return plan_campaign(
        ["_router-toy"],
        overrides={"load": loads},
        backend=AUTO_BACKEND,
        seed=seed,
        router=BackendRouter(budget=flow_total * 1.001),
    )


class TestAuditSelection:
    def test_sample_is_deterministic_and_in_plan_order(self):
        plan = _flow_plan(loads=tuple(_RT_MESSAGES))
        once = select_audit_pairs(plan, 0.5)
        twice = select_audit_pairs(plan, 0.5)
        assert once == twice
        assert len(once) == math.ceil(0.5 * len(plan))
        order = [spec for spec in plan]
        indices = [order.index(flow_spec) for flow_spec, _ in once]
        assert indices == sorted(indices)

    def test_any_positive_fraction_audits_at_least_one_cell(self):
        plan = _flow_plan()
        assert len(select_audit_pairs(plan, 0.01)) == 1

    def test_zero_fraction_and_flit_plans_audit_nothing(self):
        assert select_audit_pairs(_flow_plan(), 0.0) == []
        flit_plan = plan_campaign(["_router-toy"], overrides={"load": ("tiny",)})
        assert select_audit_pairs(flit_plan, 1.0) == []

    def test_flow_only_scenarios_are_excluded(self):
        plan = plan_campaign(
            ["bisection-stress-large"],
            overrides={"mode": ("ADAPTIVE_0",), "noise": ("none",)},
            backend="flow",
        )
        assert select_audit_pairs(plan, 1.0) == []

    def test_twin_is_a_flit_spec_with_audit_provenance(self):
        plan = _flow_plan()
        for flow_spec, twin in select_audit_pairs(plan, 1.0):
            assert twin.backend == "flit" and twin.routed_from == "audit"
            assert twin.scenario == flow_spec.scenario
            assert twin.params == flow_spec.params
            assert twin.scale == flow_spec.scale and twin.seed == flow_spec.seed
            assert twin.spec_hash() != flow_spec.spec_hash()
            # An audit twin must never alias a plain (cacheable) flit run.
            plain = RunSpec.make(
                twin.scenario, twin.params_dict, scale=twin.scale,
                seed=twin.seed, backend="flit",
            )
            assert twin.spec_hash() != plain.spec_hash()
            assert twin.label().endswith("@flit(audit)")


class TestAuditExecution:
    def test_metric_deltas_compares_shared_metrics_only(self):
        flow = {"metrics": {"a": 2.0, "b": 0.0, "flow_only": 1.0}}
        flit = {"metrics": {"a": 1.0, "b": 0.0, "flit_only": 2.0}}
        deltas = metric_deltas(flow, flit)
        assert set(deltas) == {"a", "b"}
        assert deltas["a"] == {"flow": 2.0, "flit": 1.0, "delta": 1.0, "rel": 1.0}
        assert "rel" not in deltas["b"]  # zero flit value: no relative delta
        assert metric_deltas({}, flit) == {}

    def test_audit_post_pass_records_and_persists_deltas(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        plan = _flow_plan()
        result = execute_plan(plan, store=store, audit_fraction=1.0)
        assert result.failed == 0
        assert len(result.audits) == len(plan)
        assert "audit(s)" in result.summary()
        for audit in result.audits:
            assert audit.ok and audit.twin.backend == "flit"
            assert "total" in audit.deltas
            assert store.has_audit(audit.spec)
            payload = store.load_audit(audit.spec)
            assert payload["flit_hash"] == audit.twin.spec_hash()
            assert payload["metrics"] == audit.deltas
            # The twin ran with a foreign (flow-derived) seed, so its
            # result must NOT enter the ordinary run cache.
            assert not store.has(audit.twin)

    def test_audit_twin_runs_in_the_flow_cells_rng_universe(self, tmp_path):
        """Same derived seed => the seed-driven toy metrics match exactly."""
        plan = _flow_plan()
        result = execute_plan(plan, audit_fraction=1.0)
        for audit in result.audits:
            assert audit.deltas["total"]["delta"] == 0.0
            assert audit.max_abs_rel() == 0.0

    def test_audits_are_cached_by_flow_hash_on_rerun(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        plan = _flow_plan()
        first = execute_plan(plan, store=store, audit_fraction=1.0)
        assert all(not audit.record.cached for audit in first.audits)
        second = execute_plan(plan, store=store, audit_fraction=1.0)
        assert all(audit.record.cached for audit in second.audits)
        assert [a.deltas for a in first.audits] == [a.deltas for a in second.audits]

    def test_audits_skipped_without_flow_cells(self, tmp_path):
        plan = plan_campaign(["_router-toy"], overrides={"load": ("tiny",)})
        result = execute_plan(plan, audit_fraction=1.0)
        assert result.audits == []


# -- CLI ----------------------------------------------------------------------------

class TestCliOverrides:
    def test_valid_overrides_still_parse(self):
        assert parse_override("x=1,2") == ("x", [1, 2])
        assert parse_override("b=true") == ("b", [True])

    def test_empty_value_list_names_the_axis(self):
        with pytest.raises(ValueError, match="lists no values for axis 'x'"):
            parse_override("x=")
        with pytest.raises(ValueError, match="lists no values"):
            parse_override("x=   ")

    def test_empty_token_reports_position(self):
        with pytest.raises(ValueError, match="empty value at position 2"):
            parse_override("x=1,,2")
        with pytest.raises(ValueError, match="empty value at position 1"):
            parse_override("x=,5")

    def test_missing_axis_name_rejected(self):
        with pytest.raises(ValueError, match="names no axis"):
            parse_override("=1,2")


class TestCliAuto:
    """Acceptance: `repro campaign run --backend auto` routes, budgets, audits."""

    def _budget_for(self, overrides):
        baseline = plan_campaign(
            ["pingpong-placement"], overrides=overrides, backend=AUTO_BACKEND
        )
        flow_total = sum(cell.estimates["flow"].work for cell in baseline.costs)
        flit_total = sum(cell.estimates["flit"].work for cell in baseline.costs)
        budget = flow_total * 1.5
        assert budget < flit_total  # the budget genuinely forces flow routing
        return budget

    def test_auto_campaign_routes_within_budget_and_audits(self, tmp_path, capsys):
        overrides = {
            "placement": ("inter-groups",),
            "message_kib": (4,),
            "noise": ("none", "light"),
        }
        budget = self._budget_for(overrides)
        args = [
            "run", "pingpong-placement",
            "--backend", "auto",
            "--budget", str(budget),
            "--audit-fraction", "1.0",
            "--set", "placement=inter-groups",
            "--set", "message_kib=4",
            "--set", "noise=none,light",
            "--store", str(tmp_path / "store"),
        ]
        # Dry run: every cell resolved to a concrete backend at plan time,
        # the budget report printed, and the audit schedule announced.
        assert campaign_main(args + ["--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "@flow(auto)" in out
        assert "@auto" not in out.replace("@flow(auto)", "")  # nothing unresolved
        assert "budget:" in out and "within budget" in out
        assert "audits: 2 flit re-run(s) scheduled" in out

        # Real run: flow cells executed, >=1 flit audit re-run, deltas stored.
        assert campaign_main(args) == 0
        out = capsys.readouterr().out
        assert "[audit]" in out
        store = ArtifactStore(tmp_path / "store")
        assert len(store.audit_index()) == 2
        audit_files = sorted((tmp_path / "store" / "audits").glob("*.json"))
        assert len(audit_files) == 2
        payload = json.loads(audit_files[0].read_text())
        assert payload["flow_spec"]["routed_from"] == "auto"
        assert payload["flit_spec"]["backend"] == "flit"
        assert payload["metrics"]  # flow-vs-flit deltas persisted
        # The plan stayed within the requested budget estimate.
        plan = plan_campaign(
            ["pingpong-placement"],
            overrides=overrides,
            backend=AUTO_BACKEND,
            router=BackendRouter(budget=budget),
        )
        assert plan.total_work <= budget

    def test_auto_campaign_is_cached_on_rerun(self, tmp_path, capsys):
        overrides = {
            "placement": ("inter-groups",),
            "message_kib": (4,),
            "noise": ("none",),
        }
        budget = self._budget_for(overrides)
        args = [
            "run", "pingpong-placement",
            "--backend", "auto",
            "--budget", str(budget),
            "--audit-fraction", "1.0",
            "--set", "placement=inter-groups",
            "--set", "message_kib=4",
            "--set", "noise=none",
            "--store", str(tmp_path / "store"),
        ]
        assert campaign_main(args) == 0
        capsys.readouterr()
        assert campaign_main(args) == 0
        out = capsys.readouterr().out
        assert "0 executed, 1 cached" in out
        assert "cached, max |rel delta|" in out or "(cached" in out

    def test_impossible_budget_is_a_clean_error(self, tmp_path, capsys):
        code = campaign_main(
            [
                "run", "_router-toy",
                "--backend", "auto",
                "--budget", "0.001",
                "--store", str(tmp_path / "store"),
            ]
        )
        assert code == 2
        assert "budget error" in capsys.readouterr().err

    def test_invalid_audit_fraction_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            campaign_main(
                ["run", "_router-toy", "--audit-fraction", "2.0",
                 "--store", str(tmp_path / "store")]
            )

    def test_status_reports_audits(self, tmp_path, capsys):
        store = ArtifactStore(tmp_path / "store")
        plan = _flow_plan()
        execute_plan(plan, store=store, audit_fraction=1.0)
        capsys.readouterr()
        assert campaign_main(["status", "--store", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "flow-vs-flit delta(s)" in out


# -- history-seeded cost estimates --------------------------------------------------

class TestCostHistory:
    """Recorded elapsed_s history overriding the static proxies (PR-4 follow-on)."""

    def _store_with_history(self, tmp_path, runs, backend="flit", elapsed=2.0):
        from repro.campaign import CostHistory

        store = ArtifactStore(tmp_path / "history-store")
        for i in range(runs):
            spec = RunSpec.make(
                "_router-toy", {"load": "tiny"}, seed=1000 + i, backend=backend
            )
            store.save(spec, {"metrics": {"total": 1.0}}, elapsed=elapsed + 0.1 * i)
        return store, CostHistory.from_store(store)

    def test_three_runs_override_the_static_proxy(self, tmp_path):
        from repro.campaign.router import HISTORY_UNITS_PER_SECOND

        _, history = self._store_with_history(tmp_path, runs=3, elapsed=2.0)
        spec = RunSpec.make("_router-toy", {"load": "tiny"}, backend="flit")
        estimates = estimate_cell(spec, history=history)
        estimate = estimates["flit"]
        assert estimate.detail["history_runs"] == 3.0
        # Median of 2.0, 2.1, 2.2 seconds.
        assert estimate.work == pytest.approx(2.1 * HISTORY_UNITS_PER_SECOND)
        assert estimate.detail["history_median_s"] == pytest.approx(2.1)

    def test_two_runs_fall_back_to_the_proxy(self, tmp_path):
        _, history = self._store_with_history(tmp_path, runs=2)
        spec = RunSpec.make("_router-toy", {"load": "tiny"}, backend="flit")
        with_history = estimate_cell(spec, history=history)["flit"]
        without = estimate_cell(spec)["flit"]
        assert with_history.work == without.work
        assert "history_runs" not in with_history.detail

    def test_history_only_applies_to_matching_scale_and_backend(self, tmp_path):
        _, history = self._store_with_history(tmp_path, runs=3, backend="flit")
        flow_spec = RunSpec.make("_router-toy", {"load": "tiny"}, backend="flow")
        paper_spec = RunSpec.make(
            "_router-toy", {"load": "tiny"}, scale="paper", backend="flit"
        )
        assert "history_runs" not in estimate_cell(flow_spec, history=history)["flow"].detail
        assert "history_runs" not in estimate_cell(paper_spec, history=history)["flit"].detail

    def test_router_consumes_history(self, tmp_path):
        from repro.campaign import CostHistory
        from repro.campaign.router import HISTORY_UNITS_PER_SECOND

        _, history = self._store_with_history(tmp_path, runs=4, elapsed=5.0)
        cells = BackendRouter(history=history).route(
            [RunSpec.make("_router-toy", {"load": "tiny"}, backend="flit")]
        )
        assert cells[0].estimates["flit"].detail["history_runs"] == 4.0
        assert cells[0].work == pytest.approx(5.15 * HISTORY_UNITS_PER_SECOND)

    def test_history_can_flip_an_auto_routing_under_budget(self, tmp_path):
        """Measured history re-orders demotion: the cell the proxy thought
        cheap on flow is measured expensive there, so a budget now keeps
        it on flit."""
        from repro.campaign import CostHistory

        store = ArtifactStore(tmp_path / "flip-store")
        for i in range(3):
            store.save(
                RunSpec.make("_router-toy", {"load": "tiny"}, seed=2000 + i,
                             backend="flit"),
                {"metrics": {"total": 1.0}},
                elapsed=0.001,  # measured: flit is nearly free here
            )
            store.save(
                RunSpec.make("_router-toy", {"load": "tiny"}, seed=2000 + i,
                             backend="flow"),
                {"metrics": {"total": 1.0}},
                elapsed=10.0,  # measured: flow is pathologically slow
            )
        history = CostHistory.from_store(store)
        spec = RunSpec.make("_router-toy", {"load": "tiny"}, backend=AUTO_BACKEND)
        # A budget between the proxies' flow and flit estimates demotes the
        # blind cell to flow...
        flow_proxy = estimate_cell(spec)["flow"].work
        blind = BackendRouter(budget=flow_proxy * 1.01).route([spec])
        assert blind[0].chosen == "flow"  # proxy says flow is the cheap escape
        # ... while the same squeeze under measured history keeps it on flit
        # (measured flit ~10 units fits; measured flow ~100k would not).
        seen = BackendRouter(budget=flow_proxy * 1.01, history=history).route([spec])
        assert seen[0].chosen == "flit"  # history knows flit is cheaper

    def test_from_store_tolerates_missing_store_and_bad_entries(self, tmp_path):
        from repro.campaign import CostHistory

        assert CostHistory.from_store(None).samples == {}
        store = ArtifactStore(tmp_path / "bad")
        spec = RunSpec.make("_router-toy", {"load": "tiny"})
        store.save(spec, {"metrics": {"total": 1.0}})  # no elapsed recorded
        history = CostHistory.from_store(store)
        assert history.work_for("_router-toy", "smoke", "flit") is None

    def test_cli_auto_uses_store_history(self, tmp_path, capsys):
        """The run CLI seeds the router from the store it executes into."""
        store_dir = str(tmp_path / "store")
        argv = [
            "run", "_router-toy", "--backend", "auto", "--set", "load=tiny",
            "--store", store_dir,
        ]
        # Three runs build history (forced so each one actually executes and
        # records a fresh elapsed_s)...
        assert campaign_main(argv) == 0
        assert campaign_main(argv + ["--force"]) == 0
        assert campaign_main(argv + ["--force"]) == 0
        capsys.readouterr()
        # ... and the fourth plans from it: the dry-run's estimate must be
        # history-scale (sub-second smoke cell ~ tens of units), not the
        # static proxy's tens of thousands.
        assert campaign_main(argv + ["--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "estimated work" in out
