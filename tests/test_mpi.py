"""Tests for the MPI-like layer: requests, jobs, point-to-point and collectives."""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.core.policy import default_policy, high_bias_policy
from repro.mpi.job import MpiJob
from repro.mpi.request import Request
from repro.network.network import Network
from repro.routing.modes import RoutingMode


def quiet_config():
    """A configuration with OS noise disabled (deterministic host delays)."""
    return SimulationConfig.small().with_host(os_noise_probability=0.0)


class TestRequest:
    def test_completion(self):
        request = Request("send", 0)
        seen = []
        request.add_callback(lambda r: seen.append(r.completion_time))
        request.complete(42)
        assert request.done
        assert seen == [42]

    def test_late_callback_fires_immediately(self):
        request = Request("send", 0)
        request.complete(1)
        seen = []
        request.add_callback(lambda r: seen.append(True))
        assert seen == [True]

    def test_double_completion_rejected(self):
        request = Request("recv", 0)
        request.complete(1)
        with pytest.raises(RuntimeError):
            request.complete(2)

    def test_payload(self):
        request = Request("recv", 0)
        request.complete(5, payload="hello")
        assert request.payload == "hello"


class TestJobConstruction:
    def test_rank_placement(self):
        network = Network(quiet_config())
        job = MpiJob(network, [0, 5, 9])
        assert job.size == 3
        assert job.node_of(1) == 5
        assert job.ranks_on_node(5) == 1

    def test_multiple_ranks_per_node(self):
        network = Network(quiet_config())
        job = MpiJob(network, [0, 0, 0, 0])
        assert job.ranks_on_node(0) == 4

    def test_empty_job_rejected(self):
        network = Network(quiet_config())
        with pytest.raises(ValueError):
            MpiJob(network, [])

    def test_unknown_node_rejected(self):
        network = Network(quiet_config())
        with pytest.raises(ValueError):
            MpiJob(network, [0, 10_000])

    def test_policy_per_rank(self):
        network = Network(quiet_config())
        job = MpiJob(network, [0, 1], policy_factory=high_bias_policy)
        assert len(job.policies) == 2
        assert job.policy_label() == "HighBias"
        assert job.default_traffic_fraction() == 0.0


class TestPointToPoint:
    def test_blocking_send_recv(self):
        network = Network(quiet_config())
        job = MpiJob(network, [0, network.num_nodes - 1])
        received = []

        def program(ctx):
            if ctx.rank == 0:
                yield ctx.isend(1, 4096, tag="m")
            else:
                req = ctx.irecv(0, tag="m")
                yield req
                received.append(ctx.now)

        end = job.run(program)
        assert job.finished
        assert received and received[0] <= end

    def test_send_before_recv_posted(self):
        """Unexpected-message path: the send arrives before the recv is posted."""
        network = Network(quiet_config())
        job = MpiJob(network, [0, 4])

        def program(ctx):
            if ctx.rank == 0:
                yield ctx.isend(1, 1024, tag="x")
            else:
                yield ctx.compute(50_000)  # delay the recv posting
                yield ctx.irecv(0, tag="x")

        job.run(program)
        assert job.finished

    def test_recv_before_send_posted(self):
        network = Network(quiet_config())
        job = MpiJob(network, [0, 4])

        def program(ctx):
            if ctx.rank == 1:
                yield ctx.irecv(0, tag="y")
            else:
                yield ctx.compute(50_000)
                yield ctx.isend(1, 1024, tag="y")

        job.run(program)
        assert job.finished

    def test_intra_node_transfer_bypasses_network(self):
        network = Network(quiet_config())
        job = MpiJob(network, [0, 0])

        def program(ctx):
            if ctx.rank == 0:
                yield ctx.isend(1, 65536, tag="shm")
            else:
                yield ctx.irecv(0, tag="shm")

        job.run(program)
        assert network.nic(0).counters.request_packets == 0  # no network traffic

    def test_message_ordering_fifo_per_key(self):
        network = Network(quiet_config())
        job = MpiJob(network, [0, 6])
        order = []

        def program(ctx):
            if ctx.rank == 0:
                for i in range(3):
                    yield ctx.isend(1, 512, tag="seq")
            else:
                for i in range(3):
                    req = ctx.irecv(0, tag="seq")
                    yield req
                    order.append(i)

        job.run(program)
        assert order == [0, 1, 2]

    def test_sendrecv(self):
        network = Network(quiet_config())
        job = MpiJob(network, [0, 7])

        def program(ctx):
            peer = 1 - ctx.rank
            yield from ctx.sendrecv(peer, peer, 2048, tag="xchg")

        job.run(program)
        assert job.finished

    def test_compute_advances_time(self):
        network = Network(quiet_config())
        job = MpiJob(network, [0])
        times = []

        def program(ctx):
            start = ctx.now
            yield ctx.compute(10_000)
            times.append(ctx.now - start)

        job.run(program)
        assert times[0] >= 10_000

    def test_mode_decided_by_policy(self):
        network = Network(quiet_config())
        job = MpiJob(network, [0, network.num_nodes - 1], policy_factory=high_bias_policy)
        modes = []

        def program(ctx):
            if ctx.rank == 0:
                request = ctx.isend(1, 8192, tag="m")
                yield request
                modes.append(request.payload.routing_mode)
            else:
                yield ctx.irecv(0, tag="m")

        job.run(program)
        assert modes == [RoutingMode.ADAPTIVE_3]

    def test_rank_out_of_range(self):
        network = Network(quiet_config())
        job = MpiJob(network, [0, 1])
        with pytest.raises(ValueError):
            job.post_send(0, 5, 64)

    def test_failure_in_program_propagates(self):
        network = Network(quiet_config())
        job = MpiJob(network, [0, 1])

        def program(ctx):
            if ctx.rank == 0:
                raise RuntimeError("boom")
            yield ctx.compute(10)

        with pytest.raises(RuntimeError, match="boom"):
            job.run(program)

    def test_deadlock_detected_as_missing_events(self):
        network = Network(quiet_config())
        job = MpiJob(network, [0, 1])

        def program(ctx):
            # Both ranks wait for a message that never arrives.
            yield ctx.irecv(1 - ctx.rank, tag="never")

        with pytest.raises(RuntimeError):
            job.run(program)


class TestCollectives:
    @pytest.mark.parametrize("ranks", [2, 3, 4, 7, 8])
    def test_barrier_completes(self, ranks):
        network = Network(quiet_config())
        job = MpiJob(network, list(range(0, ranks * 3, 3)))

        def program(ctx):
            yield from ctx.barrier()

        job.run(program)
        assert job.finished

    @pytest.mark.parametrize("ranks", [2, 4, 8])
    def test_allreduce_power_of_two(self, ranks):
        network = Network(quiet_config())
        job = MpiJob(network, list(range(ranks)))

        def program(ctx):
            yield from ctx.allreduce(4096)

        job.run(program)
        assert job.finished

    @pytest.mark.parametrize("ranks", [3, 5, 6])
    def test_allreduce_non_power_of_two(self, ranks):
        network = Network(quiet_config())
        job = MpiJob(network, list(range(ranks)))

        def program(ctx):
            yield from ctx.allreduce(4096)

        job.run(program)
        assert job.finished

    @pytest.mark.parametrize("ranks", [2, 4, 5, 8])
    def test_alltoall(self, ranks):
        network = Network(quiet_config())
        job = MpiJob(network, list(range(ranks)))

        def program(ctx):
            yield from ctx.alltoall(512)

        job.run(program)
        assert job.finished

    def test_alltoall_generates_all_pairs_traffic(self):
        network = Network(quiet_config())
        nodes = list(range(0, 8, 2))
        job = MpiJob(network, nodes)

        def program(ctx):
            yield from ctx.alltoall(1024)

        job.run(program)
        # Every NIC in the job must have sent to every other rank: P-1 messages.
        for node in nodes:
            assert network.nic(node).messages_sent >= len(nodes) - 1

    @pytest.mark.parametrize("ranks,root", [(4, 0), (5, 2), (8, 7)])
    def test_bcast_and_reduce(self, ranks, root):
        network = Network(quiet_config())
        job = MpiJob(network, list(range(ranks)))

        def program(ctx):
            yield from ctx.bcast(2048, root=root)
            yield from ctx.reduce(2048, root=root)

        job.run(program)
        assert job.finished

    def test_bcast_root_sends_no_recv(self):
        network = Network(quiet_config())
        job = MpiJob(network, [0, 4, 8, 12])

        def program(ctx):
            yield from ctx.bcast(4096, root=0)

        job.run(program)
        # The root's NIC sent at least one message, rank 3's sent none for bcast.
        assert network.nic(0).messages_sent >= 1

    @pytest.mark.parametrize("ranks", [2, 3, 6])
    def test_allgather(self, ranks):
        network = Network(quiet_config())
        job = MpiJob(network, list(range(ranks)))

        def program(ctx):
            yield from ctx.allgather(1024)

        job.run(program)
        assert job.finished

    def test_single_rank_collectives_are_trivial(self):
        network = Network(quiet_config())
        job = MpiJob(network, [0])

        def program(ctx):
            yield from ctx.barrier()
            yield from ctx.allreduce(1024)
            yield from ctx.alltoall(1024)
            yield from ctx.bcast(1024)
            yield from ctx.allgather(1024)
            yield from ctx.reduce(1024)
            yield ctx.compute(10)

        job.run(program)
        assert job.finished

    def test_alltoall_marks_collective_for_policy(self):
        """Alltoall traffic must reach the policy with collective='alltoall'."""
        seen = []

        class ProbePolicy(default_policy().__class__):
            def mode_for(self, size_bytes, dst_node, collective=None):
                seen.append(collective)
                return super().mode_for(size_bytes, dst_node, collective)

        network = Network(quiet_config())
        job = MpiJob(
            network,
            [0, 3, 6, 9],
            policy_factory=lambda: ProbePolicy(
                RoutingMode.ADAPTIVE_0, alltoall_mode=RoutingMode.ADAPTIVE_1
            ),
        )

        def program(ctx):
            yield from ctx.alltoall(2048)

        job.run(program)
        assert "alltoall" in seen

    def test_consecutive_collectives(self):
        network = Network(quiet_config())
        job = MpiJob(network, list(range(4)))

        def program(ctx):
            for i in range(3):
                yield from ctx.allreduce(1024, tag=("ar", i))
                yield from ctx.barrier(tag=("b", i))

        job.run(program)
        assert job.finished

    def test_job_reports_simulation_end_time(self):
        network = Network(quiet_config())
        job = MpiJob(network, [0, 5])

        def program(ctx):
            yield from ctx.barrier()

        end = job.run(program)
        assert end == network.sim.now
