"""Tests for the campaign engine: registry, planner, executor, store, CLI."""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    ArtifactStore,
    ensure_builtin_scenarios,
    execute_plan,
    execute_spec,
    plan_campaign,
)
from repro.campaign.plan import CampaignPlan, RunSpec, expand_scenario
from repro.campaign.registry import (
    Scenario,
    ScenarioError,
    get_scenario,
    register,
    scenario,
    scenario_names,
)
from repro.experiments.cli import campaign_main, main, parse_override
from repro.sim.rng import RandomStreams


# -- test scenarios -----------------------------------------------------------------

def _toy_runner(scale, *, x=1, flavor="a"):
    """Cheap deterministic runner: derives numbers from the run's seed."""
    streams = RandomStreams(scale.seed)
    values = [streams.randint("toy", 0, 10_000) for _ in range(5)]
    return {
        "metrics": {"total": float(sum(values)) * x},
        "data": {"values": values, "flavor": flavor},
        "report": f"toy x={x} flavor={flavor} total={sum(values)}",
    }


TOY = Scenario(
    name="_toy",
    description="cheap deterministic scenario for the executor tests",
    axes={"x": (1, 2), "flavor": ("a", "b")},
    runner=_toy_runner,
)


@pytest.fixture(scope="module", autouse=True)
def _registered():
    ensure_builtin_scenarios()
    try:
        register(TOY)
    except ScenarioError:
        pass  # already registered by a previous module run in this process
    yield


# -- registry -----------------------------------------------------------------------

class TestRegistry:
    def test_builtin_figures_registered(self):
        names = scenario_names(tag="figure")
        assert {"figure3", "figure4", "figure7", "figure8", "table1"} <= set(names)

    def test_builtin_sweeps_registered(self):
        assert {"pingpong-placement", "routing-mode-pingpong", "policy-comparison"} <= set(
            scenario_names(tag="sweep")
        )

    def test_unknown_scenario_error_lists_known(self):
        with pytest.raises(ScenarioError, match="figure3"):
            get_scenario("no-such-scenario")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ScenarioError, match="already registered"):
            register(TOY)

    def test_decorator_registers_and_validates_axes(self):
        with pytest.raises(ScenarioError, match="JSON scalar"):
            @scenario(name="_bad-axes", axes={"a": ([1, 2],)})
            def _bad(scale, *, a):
                return {}

    def test_grid_size(self):
        assert get_scenario("_toy").grid_size() == 4
        assert get_scenario("figure3").grid_size() == 1


# -- planner ------------------------------------------------------------------------

class TestPlanner:
    def test_spec_hash_stable_and_sensitive(self):
        a = RunSpec.make("_toy", {"x": 1, "flavor": "a"}, scale="smoke", seed=1)
        b = RunSpec.make("_toy", {"flavor": "a", "x": 1}, scale="smoke", seed=1)
        assert a.spec_hash() == b.spec_hash()  # param order is canonicalized
        assert a.spec_hash() != a.__class__.make("_toy", {"x": 2, "flavor": "a"}).spec_hash()
        changed_seed = RunSpec.make("_toy", {"x": 1, "flavor": "a"}, scale="smoke", seed=2)
        assert a.spec_hash() != changed_seed.spec_hash()
        changed_scale = RunSpec.make("_toy", {"x": 1, "flavor": "a"}, scale="paper", seed=1)
        assert a.spec_hash() != changed_scale.spec_hash()

    def test_run_seeds_are_independent_per_grid_point(self):
        specs = expand_scenario(get_scenario("_toy"))
        seeds = [spec.run_seed() for spec in specs]
        assert len(set(seeds)) == len(seeds)
        assert seeds == [spec.run_seed() for spec in specs]  # and reproducible

    def test_non_scalar_param_rejected(self):
        with pytest.raises(TypeError, match="JSON scalar"):
            RunSpec.make("_toy", {"x": [1, 2]})

    def test_expansion_is_deterministic_full_product(self):
        specs = expand_scenario(get_scenario("_toy"))
        assert len(specs) == 4
        assert specs == expand_scenario(get_scenario("_toy"))
        assert [s.params_dict for s in specs] == [
            {"flavor": "a", "x": 1},
            {"flavor": "a", "x": 2},
            {"flavor": "b", "x": 1},
            {"flavor": "b", "x": 2},
        ]

    def test_overrides_replace_axis_values(self):
        specs = expand_scenario(get_scenario("_toy"), overrides={"x": (7,)})
        assert {s.params_dict["x"] for s in specs} == {7}
        assert len(specs) == 2

    def test_unknown_override_axis_rejected(self):
        with pytest.raises(ScenarioError, match="no axis"):
            expand_scenario(get_scenario("_toy"), overrides={"bogus": (1,)})
        with pytest.raises(ScenarioError, match="match no requested scenario"):
            plan_campaign(["_toy"], overrides={"bogus": (1,)})

    def test_plan_deduplicates(self):
        plan = plan_campaign(["_toy", "_toy"])
        assert len(plan) == 4

    def test_plan_describe_mentions_hashes(self):
        plan = plan_campaign(["_toy"], overrides={"x": (1,), "flavor": ("a",)})
        text = plan.describe()
        assert plan.specs[0].spec_hash() in text
        assert "_toy[flavor=a,x=1]" in text


# -- store --------------------------------------------------------------------------

class TestStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        spec = RunSpec.make("_toy", {"x": 1, "flavor": "a"})
        assert not store.has(spec)
        payload = {"metrics": {"total": 3.0}, "data": {"values": [1, 2]}}
        store.save(spec, payload, report="toy report", elapsed=0.5)
        assert store.has(spec)
        assert store.load(spec) == payload
        assert store.report_path(spec).read_text().strip() == "toy report"

    def test_result_artifact_is_byte_stable(self, tmp_path):
        payload = {"b": 2, "a": {"z": [1.5, 2], "y": "s"}}
        spec = RunSpec.make("_toy", {"x": 1, "flavor": "a"})
        store1 = ArtifactStore(tmp_path / "one")
        store2 = ArtifactStore(tmp_path / "two")
        store1.save(spec, payload)
        store2.save(spec, dict(reversed(list(payload.items()))))
        assert store1.result_path(spec).read_bytes() == store2.result_path(spec).read_bytes()

    def test_index_survives_reopen(self, tmp_path):
        root = tmp_path / "store"
        spec = RunSpec.make("_toy", {"x": 2, "flavor": "b"})
        ArtifactStore(root).save(spec, {"metrics": {"total": 1.0}})
        reopened = ArtifactStore(root)
        assert reopened.has(spec)
        assert reopened.summary() == {"_toy": 1}

    def test_csv_export_flattens_metrics(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.save(RunSpec.make("_toy", {"x": 1, "flavor": "a"}), {"metrics": {"total": 9.0}})
        path = store.export_csv(tmp_path / "out.csv")
        text = path.read_text()
        assert "metric.total" in text.splitlines()[0]
        assert "9.0" in text

    def test_load_missing_raises(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        with pytest.raises(KeyError):
            store.load(RunSpec.make("_toy", {"x": 1, "flavor": "a"}))

    def test_empty_store_csv_has_header(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        path = store.export_csv(tmp_path / "out.csv")
        header = path.read_text().splitlines()[0]
        assert header.startswith("hash,scenario,scale,seed,params")

    def test_family_rollups_aggregate_per_scenario(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.save(
            RunSpec.make("_toy", {"x": 1, "flavor": "a"}, seed=0),
            {"metrics": {"total": 1.0}},
            elapsed=2.0,
        )
        store.save(
            RunSpec.make("_toy", {"x": 2, "flavor": "b"}, seed=1),
            {"metrics": {"total": 2.0}},
            elapsed=4.0,
        )
        rollups = store.family_rollups()
        assert len(rollups) == 1
        rollup = rollups[0]
        assert rollup["scenario"] == "_toy"
        assert rollup["runs"] == 2
        assert rollup["seeds"] == 2
        assert rollup["scales"] == ["smoke"]
        assert rollup["elapsed_total_s"] == pytest.approx(6.0)
        assert rollup["elapsed_p50_s"] == pytest.approx(3.0)

    def test_family_rollups_empty_store(self, tmp_path):
        assert ArtifactStore(tmp_path / "store").family_rollups() == []

    def test_two_writers_sharing_a_store_merge_index(self, tmp_path):
        root = tmp_path / "shared"
        writer_a = ArtifactStore(root)
        writer_b = ArtifactStore(root)  # opened before a's save, as a second CLI would
        spec_a = RunSpec.make("_toy", {"x": 1, "flavor": "a"})
        spec_b = RunSpec.make("_toy", {"x": 2, "flavor": "b"})
        writer_a.save(spec_a, {"metrics": {"total": 1.0}})
        writer_b.save(spec_b, {"metrics": {"total": 2.0}})
        reopened = ArtifactStore(root)
        assert reopened.has(spec_a) and reopened.has(spec_b)


# -- executor -----------------------------------------------------------------------

class TestExecutor:
    def test_serial_execution_in_plan_order(self):
        plan = plan_campaign(["_toy"])
        result = execute_plan(plan, workers=1)
        assert result.executed == 4 and result.cached == 0 and result.failed == 0
        assert [r.spec for r in result.records] == list(plan.specs)

    def test_payloads_are_json_roundtripped(self):
        spec = RunSpec.make("_toy", {"x": 1, "flavor": "a"})
        payload, report, elapsed = execute_spec(spec)
        assert payload == json.loads(json.dumps(payload))
        assert "toy" in report
        assert elapsed >= 0.0

    def test_nan_payload_rejected(self):
        try:
            register(
                Scenario(
                    name="_nan",
                    description="returns NaN",
                    axes={},
                    runner=lambda scale: {"metrics": {"bad": float("nan")}},
                )
            )
        except ScenarioError:
            pass
        with pytest.raises(TypeError, match="non-JSON-safe"):
            execute_spec(RunSpec.make("_nan"))

    def test_failure_captured_as_record(self):
        bad = CampaignPlan(
            name="bad",
            specs=(RunSpec.make("pingpong-placement",
                                {"placement": "nope", "message_kib": 4, "noise": "none"}),),
        )
        result = execute_plan(bad)
        assert result.failed == 1
        assert "placement" in result.records[0].error
        assert not result.records[0].ok

    def test_cache_hits_second_invocation(self, tmp_path):
        """Acceptance: a second invocation is a >= 90 % cache hit."""
        store = ArtifactStore(tmp_path / "store")
        plan = plan_campaign(["_toy"])
        first = execute_plan(plan, store=store, workers=2)
        assert first.executed == len(plan) and first.cached == 0
        second = execute_plan(plan, store=store, workers=2)
        assert second.executed == 0 and second.cached == len(plan)
        assert second.cached / len(plan) >= 0.9
        # cached payloads are identical to the fresh ones
        assert [r.payload for r in second.records] == [r.payload for r in first.records]

    def test_force_re_executes(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        plan = plan_campaign(["_toy"], overrides={"x": (1,), "flavor": ("a",)})
        execute_plan(plan, store=store)
        forced = execute_plan(plan, store=store, force=True)
        assert forced.executed == 1 and forced.cached == 0

    def test_progress_reports_every_run(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        plan = plan_campaign(["_toy"])
        seen = []
        execute_plan(plan, store=store, progress=lambda done, total, rec: seen.append((done, total)))
        assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            execute_plan(plan_campaign(["_toy"]), workers=0)


class TestDeterminism:
    """Same RunSpec, serial vs. parallel executor -> byte-identical JSON."""

    def _plan(self):
        return plan_campaign(
            ["pingpong-placement"],
            overrides={"message_kib": (4,), "noise": ("none", "light")},
        )

    def test_serial_and_parallel_results_byte_identical(self, tmp_path):
        plan = self._plan()
        serial_store = ArtifactStore(tmp_path / "serial")
        parallel_store = ArtifactStore(tmp_path / "parallel")
        serial = execute_plan(plan, store=serial_store, workers=1)
        parallel = execute_plan(plan, store=parallel_store, workers=4)
        assert serial.failed == 0 and parallel.failed == 0
        for spec in plan:
            a = serial_store.result_path(spec).read_bytes()
            b = parallel_store.result_path(spec).read_bytes()
            assert a == b, f"artifact for {spec.label()} differs serial vs parallel"

    def test_repeated_execution_byte_identical(self, tmp_path):
        spec = RunSpec.make(
            "pingpong-placement", {"placement": "inter-groups", "message_kib": 4, "noise": "light"}
        )
        one = json.dumps(execute_spec(spec)[0], sort_keys=True)
        two = json.dumps(execute_spec(spec)[0], sort_keys=True)
        assert one.encode() == two.encode()


class TestFigureScenarios:
    """Acceptance: figure experiments run as scenarios with artifacts on disk."""

    def test_figure_campaign_writes_artifacts(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        plan = plan_campaign(["figure3", "figure4"])
        result = execute_plan(plan, store=store, workers=2)
        assert result.failed == 0 and result.executed == 2
        for spec in plan:
            assert store.result_path(spec).exists()
            assert store.report_path(spec).exists()
        fig3 = store.load(plan.specs[0])
        assert "Figure 3" in fig3["report"]
        assert any(key.startswith("median.") for key in fig3["metrics"])
        assert "samples" in fig3["data"]
        fig4 = store.load(plan.specs[1])
        assert "Figure 4" in fig4["report"]


# -- CLI ---------------------------------------------------------------------------

class TestCampaignCli:
    def test_parse_override(self):
        assert parse_override("x=1,2") == ("x", [1, 2])
        assert parse_override("noise=none,light") == ("noise", ["none", "light"])
        assert parse_override("f=1.5") == ("f", [1.5])
        assert parse_override("b=true") == ("b", [True])
        with pytest.raises(ValueError):
            parse_override("oops")

    def test_list_subcommand(self, capsys):
        assert campaign_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "pingpong-placement" in out
        assert "figure3" in out

    def test_list_tag_filter(self, capsys):
        assert campaign_main(["list", "--tag", "figure"]) == 0
        out = capsys.readouterr().out
        assert "figure3" in out
        assert "pingpong-placement" not in out

    def test_dry_run_prints_plan_without_executing(self, tmp_path, capsys):
        code = campaign_main(
            ["run", "all", "--dry-run", "--store", str(tmp_path / "store")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "run(s)" in out and "cache: 0/" in out
        assert not (tmp_path / "store" / "results").exists() or not any(
            (tmp_path / "store" / "results").iterdir()
        )

    def test_run_and_status_roundtrip(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        code = campaign_main(
            ["run", "_toy", "--workers", "2", "--store", store,
             "--csv", str(tmp_path / "out.csv")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "4 executed, 0 cached" in out
        code = campaign_main(["run", "_toy", "--workers", "2", "--store", store])
        assert code == 0
        assert "0 executed, 4 cached" in capsys.readouterr().out
        assert campaign_main(["status", "--store", store]) == 0
        assert "_toy: 4" in capsys.readouterr().out
        assert (tmp_path / "out.csv").exists()

    def test_unknown_scenario_is_a_parser_error(self, tmp_path):
        with pytest.raises(SystemExit):
            campaign_main(["run", "not-a-scenario", "--store", str(tmp_path / "s")])

    def test_scenario_error_message_is_not_repr_quoted(self):
        message = str(ScenarioError("unknown scenario 'x'"))
        assert message == "unknown scenario 'x'"  # KeyError would add quotes

    def test_read_only_commands_do_not_create_store_dirs(self, tmp_path, capsys):
        store = tmp_path / "nonexistent"
        assert campaign_main(["status", "--store", str(store)]) == 0
        assert campaign_main(
            ["run", "_toy", "--dry-run", "--store", str(store)]
        ) == 0
        capsys.readouterr()
        assert not store.exists()

    def test_csv_with_no_store_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            campaign_main(
                ["run", "_toy", "--no-store", "--csv", str(tmp_path / "o.csv")]
            )

    def test_keywords_mix_with_scenario_names(self, tmp_path, capsys):
        code = campaign_main(
            ["run", "figures", "_toy", "--dry-run", "--store", str(tmp_path / "s")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "figure3" in out and "_toy" in out

    def test_duplicate_set_axis_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            campaign_main(
                ["run", "_toy", "--set", "x=1", "--set", "x=2",
                 "--store", str(tmp_path / "s")]
            )

    def test_main_dispatches_campaign(self, capsys):
        assert main(["campaign", "list"]) == 0
        assert "registered scenarios" in capsys.readouterr().out

    def test_legacy_cli_still_runs_figures(self, tmp_path, capsys):
        assert main(["figure4", "--scale", "smoke", "--output", str(tmp_path)]) == 0
        assert "Figure 4" in capsys.readouterr().out
        assert (tmp_path / "figure4.txt").exists()
