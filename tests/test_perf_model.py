"""Tests for the Section 2.4 performance model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import NicConfig, SimulationConfig
from repro.core.perf_model import (
    better_mode_by_model,
    estimate_transmission_cycles,
    estimate_transmission_cycles_simple,
    flits_and_packets,
    model_correlation,
)
from repro.network.network import Network
from repro.network.packet import RdmaOp

NIC = NicConfig()


class TestEquations:
    def test_equation1_structure(self):
        # 64 bytes = 1 packet = 5 flits; L/2 + f*(s+1).
        estimate = estimate_transmission_cycles_simple(64, 1000.0, 0.0, NIC)
        assert estimate == pytest.approx(500.0 + 5.0)

    def test_equation2_reduces_to_equation1_for_small_messages(self):
        """For p << W the window term is close to L/2."""
        eq1 = estimate_transmission_cycles_simple(64, 1000.0, 0.5, NIC)
        eq2 = estimate_transmission_cycles(64, 1000.0, 0.5, NIC)
        assert eq2 == pytest.approx(eq1, rel=0.01)

    def test_equation2_window_term(self):
        # 1024 packets exactly fill the window: (1024 + 512)/1024 = 1.5 L.
        size = 1024 * 64
        estimate = estimate_transmission_cycles(size, 1000.0, 0.0, NIC)
        flits, packets = flits_and_packets(size, NIC)
        assert packets == 1024
        assert estimate == pytest.approx(1.5 * 1000.0 + flits)

    def test_stalls_scale_flit_term(self):
        base = estimate_transmission_cycles(4096, 1000.0, 0.0, NIC)
        stalled = estimate_transmission_cycles(4096, 1000.0, 1.0, NIC)
        flits, _ = flits_and_packets(4096, NIC)
        assert stalled - base == pytest.approx(flits)

    def test_latency_monotonicity(self):
        low = estimate_transmission_cycles(4096, 500.0, 0.1, NIC)
        high = estimate_transmission_cycles(4096, 5000.0, 0.1, NIC)
        assert high > low

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            estimate_transmission_cycles(64, -1.0, 0.0, NIC)
        with pytest.raises(ValueError):
            estimate_transmission_cycles(64, 1.0, -0.1, NIC)

    def test_get_vs_put_flit_count(self):
        put_flits, _ = flits_and_packets(4096, NIC, RdmaOp.PUT)
        get_flits, _ = flits_and_packets(4096, NIC, RdmaOp.GET)
        assert get_flits < put_flits

    @given(
        size=st.integers(min_value=1, max_value=10_000_000),
        latency=st.floats(min_value=0.0, max_value=1e6),
        stall=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_estimate_positive_and_monotone_in_size(self, size, latency, stall):
        small = estimate_transmission_cycles(size, latency, stall, NIC)
        larger = estimate_transmission_cycles(size + 64, latency, stall, NIC)
        assert small > 0
        assert larger >= small


class TestBetterMode:
    def test_prefers_lower_latency_for_small_messages(self):
        # Small message: the latency term dominates.
        result = better_mode_by_model(64, NIC, 1000.0, 0.0, 500.0, 0.5)
        assert result == 1  # second operating point (lower latency) wins

    def test_prefers_lower_stalls_for_large_messages(self):
        result = better_mode_by_model(1024 * 1024, NIC, 1000.0, 0.1, 500.0, 2.0)
        assert result == -1  # first operating point (fewer stalls) wins

    def test_tie(self):
        assert better_mode_by_model(64, NIC, 1000.0, 0.5, 1000.0, 0.5) == 0


class TestCorrelation:
    def test_perfect_correlation(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        ys = [10.0, 20.0, 30.0, 40.0]
        assert model_correlation(xs, ys) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        xs = [1.0, 2.0, 3.0]
        ys = [3.0, 2.0, 1.0]
        assert model_correlation(xs, ys) == pytest.approx(-1.0)

    def test_constant_series_returns_zero(self):
        assert model_correlation([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            model_correlation([1.0], [1.0, 2.0])

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            model_correlation([1.0], [2.0])

    def test_matches_numpy(self):
        import numpy as np

        rng = np.random.default_rng(0)
        xs = rng.random(50).tolist()
        ys = (np.array(xs) * 2 + rng.random(50) * 0.1).tolist()
        assert model_correlation(xs, ys) == pytest.approx(np.corrcoef(xs, ys)[0, 1])


class TestModelAgainstSimulator:
    """The model built from simulated counters tracks simulated times."""

    def test_estimates_correlate_with_measured_times(self):
        sizes = [256, 1024, 4096, 16384, 65536]
        measured = []
        estimated = []
        for index, size in enumerate(sizes):
            network = Network(SimulationConfig.small(seed=100 + index))
            nic = network.nic(0)
            message = network.send(0, network.num_nodes - 1, size)
            network.run_until_idle()
            counters = nic.counters.snapshot()
            measured.append(message.transmission_time)
            estimated.append(
                estimate_transmission_cycles(
                    size, counters.avg_packet_latency, counters.stall_ratio, NIC
                )
            )
        correlation = model_correlation(estimated, measured)
        assert correlation > 0.9
