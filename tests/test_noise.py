"""Tests for background-traffic (network noise) generation."""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.network.network import Network
from repro.noise.background import BackgroundTraffic, NoiseLevel, noise_nodes_for


class TestNoiseLevel:
    def test_utilization_ordering(self):
        assert NoiseLevel.NONE.utilization == 0.0
        assert (
            NoiseLevel.LIGHT.utilization
            < NoiseLevel.MODERATE.utilization
            < NoiseLevel.HEAVY.utilization
        )


class TestNoiseNodeSelection:
    def test_excludes_measured_nodes(self, small_network):
        measured = [0, 1, 2, 3]
        nodes = noise_nodes_for(small_network, measured, fraction=1.0)
        assert not set(nodes) & set(measured)

    def test_prefers_same_groups(self, small_network):
        topo = small_network.config.topology
        measured = [0, 1]
        nodes = noise_nodes_for(small_network, measured, fraction=1.0, max_nodes=8)
        groups = {
            small_network.topology.group_of_router[n // topo.nodes_per_router]
            for n in nodes
        }
        assert groups == {0}

    def test_max_nodes_cap(self, small_network):
        nodes = noise_nodes_for(small_network, [0], fraction=1.0, max_nodes=5)
        assert len(nodes) == 5

    def test_fraction_zero_gives_nothing(self, small_network):
        assert noise_nodes_for(small_network, [0], fraction=0.0) == []

    def test_invalid_fraction(self, small_network):
        with pytest.raises(ValueError):
            noise_nodes_for(small_network, [0], fraction=1.5)


class TestBackgroundTraffic:
    def test_generates_traffic(self, small_network):
        noise = BackgroundTraffic(
            small_network, nodes=list(range(8, 16)), message_bytes=2048, utilization=0.2
        )
        noise.start()
        small_network.run(until=50_000)
        noise.stop()
        assert noise.messages_sent > 0
        assert small_network.total_flits_traversed() > 0

    def test_stop_halts_generation(self, small_network):
        noise = BackgroundTraffic(
            small_network, nodes=list(range(8, 14)), message_bytes=1024, utilization=0.2
        )
        noise.start()
        small_network.run(until=20_000)
        noise.stop()
        sent_at_stop = noise.messages_sent
        small_network.run(until=100_000)
        assert noise.messages_sent == sent_at_stop

    def test_start_is_idempotent(self, small_network):
        noise = BackgroundTraffic(
            small_network, nodes=[8, 9, 10], message_bytes=1024, utilization=0.1
        )
        noise.start()
        noise.start()
        small_network.run(until=10_000)
        assert noise.active

    def test_higher_utilization_more_traffic(self):
        sent = {}
        for utilization in (0.05, 0.4):
            network = Network(SimulationConfig.small())
            noise = BackgroundTraffic(
                network,
                nodes=list(range(16, 32)),
                message_bytes=2048,
                utilization=utilization,
            )
            noise.start()
            network.run(until=100_000)
            noise.stop()
            sent[utilization] = noise.bytes_sent
        assert sent[0.4] > sent[0.05]

    def test_hotspot_pattern_targets_one_node(self, small_network):
        noise = BackgroundTraffic(
            small_network,
            nodes=[8, 9, 10, 11],
            message_bytes=1024,
            utilization=0.2,
            pattern="hotspot",
            hotspot_node=20,
        )
        noise.start()
        small_network.run(until=50_000)
        noise.stop()
        assert small_network.nic(20).messages_received > 0

    def test_pairs_pattern(self, small_network):
        noise = BackgroundTraffic(
            small_network,
            nodes=[8, 9, 10, 11],
            message_bytes=1024,
            utilization=0.2,
            pattern="pairs",
        )
        noise.start()
        small_network.run(until=30_000)
        noise.stop()
        assert noise.messages_sent > 0

    def test_validation(self, small_network):
        with pytest.raises(ValueError):
            BackgroundTraffic(small_network, nodes=[])
        with pytest.raises(ValueError):
            BackgroundTraffic(small_network, nodes=[1, 2], utilization=0.0)
        with pytest.raises(ValueError):
            BackgroundTraffic(small_network, nodes=[1, 2], pattern="bogus")
        with pytest.raises(ValueError):
            BackgroundTraffic(small_network, nodes=[1, 2], pattern="hotspot")
        with pytest.raises(ValueError):
            BackgroundTraffic(small_network, nodes=[1], pattern="random")

    def test_for_level_none_returns_none(self, small_network):
        assert (
            BackgroundTraffic.for_level(small_network, [0, 1], NoiseLevel.NONE) is None
        )

    def test_for_level_builds_generator(self, small_network):
        noise = BackgroundTraffic.for_level(small_network, [0, 1], NoiseLevel.MODERATE)
        assert noise is not None
        assert noise.utilization == NoiseLevel.MODERATE.utilization

    def test_noise_slows_down_foreground_traffic(self):
        """The probe message takes longer when cross traffic is active."""
        quiet = Network(SimulationConfig.small(seed=5))
        probe_quiet = quiet.send(0, quiet.num_nodes - 1, 16384)
        quiet.run_until_idle()

        noisy = Network(SimulationConfig.small(seed=5))
        noise = BackgroundTraffic.for_level(
            noisy, [0, noisy.num_nodes - 1], NoiseLevel.HEAVY, max_nodes=24
        )
        noise.start()
        noisy.run(until=20_000)  # let congestion build up
        probe_noisy = noisy.send(0, noisy.num_nodes - 1, 16384)
        while not probe_noisy.acked and noisy.sim.step():
            pass
        noise.stop()
        assert probe_noisy.transmission_time > probe_quiet.transmission_time
